#!/usr/bin/env python3
"""CI bench-regression gate.

Compares a quick-mode bench run (JSONL lines from the vendored criterion
harness, one ``{"name", "ns_per_iter", "ns_min", "ns_max", "elements",
"elems_per_sec"}`` object per line) against the tracked floor rates in
``BENCH_CORE.json`` (``quick_reference.benches``). Fails (exit 1) if any
``network_throughput/*`` bench lands more than the allowed fraction
below its floor.

The floor is the minimum of several quick-mode runs on the reference
machine, so the gate only fires when a run is slower than anything the
bench has ever produced there — by default by a further 15 %.

``quick_reference.ratio_gates`` adds machine-independent checks on top:
each entry demands ``bench >= min_ratio * baseline`` *within the same
run*, so overhead envelopes (e.g. the telemetry-on bench against the
plain CC-on bench) hold even on hardware where the absolute floors are
skipped. Ratio gates are NOT bypassed by ``BENCH_GATE_SKIP`` unless the
run file itself is absent — both sides come from the same run, so
slower hardware cancels out.

Usage:
    python3 tools/bench_gate.py <run.jsonl> [--baseline BENCH_CORE.json]
                                            [--allow 0.15]

Environment:
    BENCH_GATE_SKIP=1   skip the absolute-floor comparison; for
                        known-slower hardware where absolute rates are
                        not comparable to the reference machine. The
                        same-run ratio gates still apply.
"""

import argparse
import json
import os
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("run", help="JSONL file from a BENCH_QUICK=1 run")
    ap.add_argument("--baseline", default="BENCH_CORE.json")
    ap.add_argument(
        "--allow",
        type=float,
        default=0.15,
        help="allowed fractional drop below the floor (default 0.15)",
    )
    args = ap.parse_args()

    with open(args.baseline) as fh:
        quick_ref = json.load(fh).get("quick_reference", {})
    floors = quick_ref.get("benches", {})
    ratio_gates = {
        name: spec
        for name, spec in quick_ref.get("ratio_gates", {}).items()
        if isinstance(spec, dict)  # skip the "comment" key
    }
    if not floors and not ratio_gates:
        print(f"bench_gate: no quick_reference gates in {args.baseline}; nothing to gate")
        return 0

    measured = {}
    with open(args.run) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            # Keep the best rate if the file holds several runs.
            name = rec["name"]
            measured[name] = max(measured.get(name, 0), rec["elems_per_sec"])

    failures = []
    if os.environ.get("BENCH_GATE_SKIP") == "1":
        print("bench_gate: BENCH_GATE_SKIP=1, skipping absolute-floor comparison")
        floors = {}
    for name, floor in sorted(floors.items()):
        if not name.startswith("network_throughput/"):
            continue
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: missing from {args.run}")
            continue
        limit = floor * (1.0 - args.allow)
        verdict = "FAIL" if got < limit else "ok"
        print(
            f"bench_gate: {name}: {got:>12,.0f} elem/s "
            f"(floor {floor:,.0f}, limit {limit:,.0f}) {verdict}"
        )
        if got < limit:
            failures.append(
                f"{name}: {got:,.0f} elem/s is {1 - got / floor:.0%} below the "
                f"tracked floor {floor:,.0f} (allowance {args.allow:.0%})"
            )

    # Same-run overhead envelopes: bench >= min_ratio * baseline bench.
    for name, spec in sorted(ratio_gates.items()):
        base_name, min_ratio = spec["baseline"], spec["min_ratio"]
        got, base = measured.get(name), measured.get(base_name)
        if got is None or base is None:
            missing = name if got is None else base_name
            failures.append(f"{name} ratio gate: {missing} missing from {args.run}")
            continue
        ratio = got / base if base else 0.0
        verdict = "FAIL" if ratio < min_ratio else "ok"
        print(
            f"bench_gate: {name}: {ratio:.2f}x of {base_name} "
            f"(min {min_ratio:.2f}x) {verdict}"
        )
        if ratio < min_ratio:
            failures.append(
                f"{name}: {ratio:.2f}x of {base_name} is below the "
                f"tracked overhead envelope ({min_ratio:.2f}x)"
            )

    if failures:
        print("bench_gate: REGRESSION DETECTED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_gate: all network_throughput gates within allowance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
