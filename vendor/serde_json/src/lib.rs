//! Minimal offline stand-in for `serde_json`.
//!
//! Serializes the vendored serde [`Value`] model to JSON text (compact and
//! pretty, matching serde_json's 2-space pretty style) and parses JSON
//! text back into it. Just enough for this workspace: experiment specs in,
//! result/diagnostic dumps out.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// --------------------------------------------------------------------------
// Writing
// --------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // serde_json always keeps floats distinguishable from ints.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // serde_json errors on non-finite floats; a null is more useful
        // for diagnostics dumps than refusing to write the file.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(x, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(x, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Array(xs) if !xs.is_empty() => {
            out.push_str("[\n");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(x, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(x, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Convert any [`Serialize`] into a [`Value`] tree. The [`json!`]
/// macro's expression fallback; also usable directly.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] tree with JSON-ish syntax — the subset of real
/// serde_json's `json!` this workspace uses: object/array literals with
/// trailing commas, `null`, and arbitrary Rust expressions as values
/// (converted through [`Serialize`]). Object keys must be string
/// literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_items!(items; $($elems)*);
        $crate::Value::Array(items)
    }};
    ({ $($pairs:tt)* }) => {{
        #[allow(unused_mut)]
        let mut fields: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_fields!(fields; $($pairs)*);
        $crate::Value::Object(fields)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// `json!` object-body muncher: one `"key": value` pair per step, where
/// the value is a nested literal, `null`, or an expression.
#[doc(hidden)]
#[macro_export]
macro_rules! json_fields {
    ($fields:ident;) => {};
    ($fields:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_fields!($fields; $($($rest)*)?);
    };
    ($fields:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_fields!($fields; $($($rest)*)?);
    };
    ($fields:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::Value::Null));
        $crate::json_fields!($fields; $($($rest)*)?);
    };
    ($fields:ident; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::to_value(&$val)));
        $crate::json_fields!($fields; $($($rest)*)?);
    };
}

/// `json!` array-body muncher.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($items:ident;) => {};
    ($items:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_items!($items; $($($rest)*)?);
    };
    ($items:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_items!($items; $($($rest)*)?);
    };
    ($items:ident; null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_items!($items; $($($rest)*)?);
    };
    ($items:ident; $val:expr $(, $($rest:tt)*)?) => {
        $items.push($crate::to_value(&$val));
        $crate::json_items!($items; $($($rest)*)?);
    };
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

// --------------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: u32) -> Result<Value> {
        if depth > 128 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                loop {
                    xs.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(xs));
                        }
                        _ => return Err(self.err("expected , or ] in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected : after object key")?;
                    let v = self.parse_value(depth + 1)?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected , or } in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's identifiers; map them to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy a full UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
            ("d".into(), Value::F64(1.5)),
            ("e".into(), Value::I64(-3)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v = Value::Object(vec![("a".into(), Value::U64(7))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 7\n}");
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<Value>("2.0").unwrap(), Value::F64(2.0));
        assert_eq!(from_str::<Value>("2").unwrap(), Value::U64(2));
        assert_eq!(from_str::<Value>("-2").unwrap(), Value::I64(-2));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }
}
