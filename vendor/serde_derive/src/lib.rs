//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Implemented directly on `proc_macro` tokens (no syn/quote — the build
//! environment is offline). The parser handles exactly the shapes this
//! workspace derives on: non-generic structs with named or tuple fields
//! and non-generic enums with unit/newtype/struct variants, plus the
//! `#[serde(default)]`, `#[serde(default = "path")]` and
//! `#[serde(transparent)]` attributes. Field types are never parsed; the
//! generated code leans on type inference (`from_value` in field
//! position), which is what makes a syn-free derive practical.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

// --------------------------------------------------------------------------
// Parsed shape
// --------------------------------------------------------------------------

struct Input {
    name: String,
    transparent: bool,
    container_default: bool,
    kind: Kind,
}

enum Kind {
    /// Named-field struct.
    Named(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `None`: required. `Some(None)`: `#[serde(default)]`.
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

// --------------------------------------------------------------------------
// Token-level parsing
// --------------------------------------------------------------------------

struct SerdeAttrs {
    default: Option<Option<String>>,
    transparent: bool,
}

/// Consume leading `#[...]` attributes, returning any `serde` settings.
fn take_attrs(toks: &mut Tokens) -> SerdeAttrs {
    let mut out = SerdeAttrs {
        default: None,
        transparent: false,
    };
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        let Some(TokenTree::Group(g)) = toks.next() else {
            panic!("expected [...] after #");
        };
        let mut inner = g.stream().into_iter().peekable();
        let is_serde = matches!(inner.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue; // doc comment or other attribute
        }
        inner.next();
        let Some(TokenTree::Group(args)) = inner.next() else {
            continue;
        };
        let mut a = args.stream().into_iter().peekable();
        while let Some(tok) = a.next() {
            let TokenTree::Ident(key) = tok else { continue };
            match key.to_string().as_str() {
                "transparent" => out.transparent = true,
                "default" => {
                    if matches!(a.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        a.next();
                        let Some(TokenTree::Literal(lit)) = a.next() else {
                            panic!("expected string after default =");
                        };
                        let s = lit.to_string();
                        let path = s.trim_matches('"').to_string();
                        out.default = Some(Some(path));
                    } else {
                        out.default = Some(None);
                    }
                }
                other => panic!("unsupported serde attribute `{other}`"),
            }
        }
    }
    out
}

/// Skip `pub` / `pub(...)` visibility tokens.
fn skip_vis(toks: &mut Tokens) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Skip a type expression up to a top-level `,` (angle-bracket aware).
/// Returns false when the stream ended.
fn skip_type(toks: &mut Tokens) -> bool {
    let mut depth = 0i32;
    let mut saw_any = false;
    loop {
        match toks.peek() {
            None => return saw_any,
            Some(TokenTree::Punct(p)) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        toks.next();
                        return true;
                    }
                    _ => {}
                }
                toks.next();
            }
            Some(_) => {
                toks.next();
            }
        }
        saw_any = true;
    }
}

/// Parse `name: Type, ...` named fields (the interior of a brace group).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut toks);
        skip_vis(&mut toks);
        let Some(TokenTree::Ident(name)) = toks.next() else {
            break;
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut toks);
        fields.push(Field {
            name: name.to_string(),
            default: attrs.default,
        });
    }
    fields
}

/// Count top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut n = 0;
    loop {
        if toks.peek().is_none() {
            return n;
        }
        // A field may have attributes/visibility before the type.
        take_attrs(&mut toks);
        skip_vis(&mut toks);
        if !skip_type(&mut toks) {
            return n;
        }
        n += 1;
        if toks.peek().is_none() {
            return n;
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut toks);
        let Some(TokenTree::Ident(name)) = toks.next() else {
            break;
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                toks.next();
                let n = count_tuple_fields(g);
                assert!(
                    n == 1,
                    "variant `{name}`: only newtype tuple variants are supported"
                );
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume the separating comma, if any.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    let attrs = take_attrs(&mut toks);
    skip_vis(&mut toks);
    let is_enum = match toks.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => false,
        Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => true,
        other => panic!("expected struct or enum, got {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = toks.next() else {
        panic!("expected type name");
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the vendored serde derive");
    }
    let kind = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Kind::Enum(parse_variants(g.stream()))
            } else {
                Kind::Named(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        other => panic!("unsupported item body: {other:?}"),
    };
    Input {
        name: name.to_string(),
        transparent: attrs.transparent,
        container_default: attrs.default.is_some(),
        kind,
    }
}

// --------------------------------------------------------------------------
// Code generation (string-built, parsed back into a TokenStream)
// --------------------------------------------------------------------------

fn key(name: &str) -> String {
    format!("::std::string::String::from(\"{name}\")")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            if input.transparent {
                assert!(fields.len() == 1, "transparent needs exactly one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "({}, ::serde::Serialize::to_value(&self.{}))",
                            key(&f.name),
                            f.name
                        )
                    })
                    .collect();
                format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
            }
        }
        Kind::Tuple(n) => {
            if *n == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str({key}),",
                        v = v.name,
                        key = key(&v.name)
                    ),
                    VariantKind::Newtype => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![({key}, \
                         ::serde::Serialize::to_value(__f0))]),",
                        v = v.name,
                        key = key(&v.name)
                    ),
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({}, ::serde::Serialize::to_value({}))",
                                    key(&f.name),
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![({key}, \
                             ::serde::Value::Object(::std::vec![{pairs}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            key = key(&v.name),
                            pairs = pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Expression producing one named field's value out of `__fields`.
fn named_field_expr(ty: &str, container_default: bool, f: &Field) -> String {
    let missing = match (&f.default, container_default) {
        (Some(Some(path)), _) => format!("{path}()"),
        (Some(None), _) => "::std::default::Default::default()".to_string(),
        (None, true) => format!(
            "<{ty} as ::std::default::Default>::default().{}",
            f.name
        ),
        (None, false) => format!(
            "return ::std::result::Result::Err(::serde::Error::custom(\
             \"missing field `{}` in {ty}\"))",
            f.name
        ),
    };
    format!(
        "{f}: match ::serde::get_field(__fields, \"{f}\") {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
         ::std::option::Option::None => {{ {missing} }}\n\
         }}",
        f = f.name
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            if input.transparent {
                assert!(fields.len() == 1, "transparent needs exactly one field");
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})",
                    f = fields[0].name
                )
            } else {
                let field_exprs: Vec<String> = fields
                    .iter()
                    .map(|f| named_field_expr(name, input.container_default, f))
                    .collect();
                format!(
                    "let __fields = match v {{\n\
                     ::serde::Value::Object(__p) => __p.as_slice(),\n\
                     _ => return ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"expected object for {name}, got {{:?}}\", v))),\n\
                     }};\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    field_exprs.join(",\n")
                )
            }
        }
        Kind::Tuple(n) => {
            assert!(
                *n == 1,
                "only single-field tuple structs are supported by Deserialize"
            );
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Newtype => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let field_exprs: Vec<String> = fields
                            .iter()
                            .map(|f| named_field_expr(name, false, f))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                             let __fields = match __inner {{\n\
                             ::serde::Value::Object(__p) => __p.as_slice(),\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\
                             \"expected object for variant `{v}` of {name}\")),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{v} {{ {fields} }})\n\
                             }}",
                            v = v.name,
                            fields = field_exprs.join(",\n")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"bad enum encoding for {name}: {{:?}}\", v))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}
