//! Minimal offline stand-in for the `proptest` crate.
//!
//! Keeps the `proptest!` macro surface this workspace uses — `pat in
//! strategy` and `name: Type` parameters, `#![proptest_config(..)]`,
//! range/tuple/vec/bool strategies, `prop_map`, and the `prop_assert*` /
//! `prop_assume` macros — over a deterministic splitmix64 input stream.
//! There is no shrinking: a failing case panics with the full input value
//! (cases are deterministic per test name, so a failure reproduces by
//! rerunning the test). Case count defaults to 256 and can be overridden
//! with the `PROPTEST_CASES` environment variable, like real proptest.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// --------------------------------------------------------------------------
// Deterministic input stream
// --------------------------------------------------------------------------

/// SplitMix64 stream; every generated case gets an independent seed.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform f64 in `[0, 1]`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

// --------------------------------------------------------------------------
// Strategies
// --------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.next_below(span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.next_below(span + 1) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_unit_f64() as $t;
                // Half-open: nudge an exact 1.0 draw back inside.
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.next_unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
}

pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy)]
    pub struct Any;

    /// Uniform true/false.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`], inclusive on both ends.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.next_below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Full-domain generation for `name: Type` proptest parameters.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes — without
        // NaN/inf, which no test here wants.
        let mag = rng.next_unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

#[derive(Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --------------------------------------------------------------------------
// Runner
// --------------------------------------------------------------------------

#[derive(Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive `body` over `config.cases` generated inputs. Called by the
/// `proptest!` expansion; panics (failing the #[test]) on the first
/// failing case, printing the input that produced it.
pub fn run_cases<S, F>(config: ProptestConfig, name: &str, strategy: S, mut body: F)
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let root = fnv1a(name);
    let max_rejects = (config.cases as u64).saturating_mul(16).max(1024);
    let mut rejects = 0u64;
    let mut passed = 0u32;
    let mut stream = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::from_seed(root.wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F)));
        stream += 1;
        let input = strategy.generate(&mut rng);
        match body(input.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{name}: too many prop_assume rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed: {msg}\n  test: {name} (case {passed})\n  input: {input:?}"
                );
            }
        }
    }
}

// --------------------------------------------------------------------------
// Macros
// --------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::__proptest_args! { @parse ($cfg) (stringify!($name)) ($body) [] $($params)* }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    // Done munching: build the strategy tuple and run.
    (@parse ($cfg:expr) ($name:expr) ($body:block) [$(($pat:pat, $strat:expr))*]) => {
        $crate::run_cases($cfg, $name, ($($strat,)*), move |($($pat,)*)| {
            $body
            ::std::result::Result::Ok(())
        });
    };
    // `name: Type` parameters desugar to `any::<Type>()`.
    (@parse $cfg:tt $name:tt $body:tt [$($acc:tt)*] $p:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_args! { @parse $cfg $name $body [$($acc)* ($p, $crate::any::<$ty>())] $($rest)* }
    };
    (@parse $cfg:tt $name:tt $body:tt [$($acc:tt)*] $p:ident : $ty:ty) => {
        $crate::__proptest_args! { @parse $cfg $name $body [$($acc)* ($p, $crate::any::<$ty>())] }
    };
    // `pat in strategy` parameters.
    (@parse $cfg:tt $name:tt $body:tt [$($acc:tt)*] $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_args! { @parse $cfg $name $body [$($acc)* ($pat, $strat)] $($rest)* }
    };
    (@parse $cfg:tt $name:tt $body:tt [$($acc:tt)*] $pat:pat in $strat:expr) => {
        $crate::__proptest_args! { @parse $cfg $name $body [$($acc)* ($pat, $strat)] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..100, 1..10);
        let mut r1 = crate::TestRng::from_seed(7);
        let mut r2 = crate::TestRng::from_seed(7);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Both parameter forms and tuple strategies in one signature.
        fn macro_handles_both_param_forms(
            x in 1u32..10,
            pair in (0u8..4, prop::bool::ANY),
            seed: u64,
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 4);
            let _ = seed;
        }

        fn ranges_inclusive(v in 0.0f64..=1.0, b in 1u8..=255) {
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(b >= 1);
        }

        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
