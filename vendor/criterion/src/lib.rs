//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the benches in
//! `crates/bench` use: `Criterion::default().sample_size(..)`,
//! `benchmark_group` with `throughput`/`sample_size`/`bench_function`/
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is simple wall-clock sampling:
//! run the routine untimed for a warm-up period (mirroring upstream
//! criterion's `warm_up_time`, so stateful benches measure steady
//! state rather than their fill transient), calibrate an iteration
//! count targeting ~2 ms per sample from the warm-up rate, time
//! `sample_size` samples, report the median.
//!
//! Environment hooks tailor it to this repository's tooling:
//! - `BENCH_JSON=<path>`: append one JSON line per benchmark
//!   (`{"name", "ns_per_iter", "ns_min", "ns_max", "elements",
//!   "elems_per_sec"}`, where `ns_per_iter` is the sample median and
//!   `ns_min`/`ns_max` bound the per-sample spread) — the CI
//!   bench-smoke job collects these into `BENCH_CORE.json`.
//! - `BENCH_QUICK=1`: clamp sample counts to 3 and the warm-up to
//!   200 ms for smoke runs.
//! - `BENCH_WARMUP_MS=<n>`: override the warm-up budget (default
//!   2000 ms).

pub use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// Units-of-work declaration so a result can be reported as a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), self.sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    sample_size: usize,
    warmup_ns: u128,
    /// `(min, median, max)` over the per-iteration sample times.
    stats_ns: Option<(f64, f64, f64)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up: run the routine untimed until the budget elapses.
        // Stateful benches (e.g. event-queue churn on a queue that
        // persists across calls) need this to get past their fill
        // transient; without it every sample lands in the start-up
        // phase and the reported number describes the wrong regime.
        // The warm-up also calibrates the per-call estimate over many
        // calls instead of a single cold one.
        let t0 = Instant::now();
        let mut calls: u128 = 0;
        let warm_ns = loop {
            black_box(routine());
            calls += 1;
            let el = t0.elapsed().as_nanos();
            if el >= self.warmup_ns {
                break el;
            }
        };
        let once_ns = (warm_ns / calls).max(1);
        let target_ns: u128 = 2_000_000;
        let iters = (target_ns / once_ns).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.stats_ns = Some((
            samples[0],
            samples[samples.len() / 2],
            samples[samples.len() - 1],
        ));
    }
}

fn run_one(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
    let warmup_ms: u128 = std::env::var("BENCH_WARMUP_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 200 } else { 2_000 });
    let mut b = Bencher {
        sample_size: if quick { sample_size.min(3) } else { sample_size },
        warmup_ns: warmup_ms * 1_000_000,
        stats_ns: None,
    };
    f(&mut b);
    let Some((ns_min, ns, ns_max)) = b.stats_ns else {
        eprintln!("{name}: bencher closure never called iter()");
        return;
    };

    let rate = throughput.map(|t| {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        (n as f64 * 1e9 / ns, unit, n)
    });
    match rate {
        Some((per_sec, unit, _)) => {
            println!("{name:<45} time: {ns:>14.1} ns/iter   thrpt: {per_sec:>14.0} {unit}");
        }
        None => {
            println!("{name:<45} time: {ns:>14.1} ns/iter");
        }
    }

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let elements = match throughput {
            Some(Throughput::Elements(n)) => n,
            _ => 0,
        };
        let elems_per_sec = if elements > 0 {
            elements as f64 * 1e9 / ns
        } else {
            0.0
        };
        let line = format!(
            "{{\"name\":\"{name}\",\"ns_per_iter\":{ns:.1},\"ns_min\":{ns_min:.1},\"ns_max\":{ns_max:.1},\"elements\":{elements},\"elems_per_sec\":{elems_per_sec:.0}}}\n"
        );
        if let Ok(mut fh) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = fh.write_all(line.as_bytes());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        // Keep the unit test fast: a real warm-up budget is pointless
        // for a stateless no-op routine.
        std::env::set_var("BENCH_WARMUP_MS", "1");
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
