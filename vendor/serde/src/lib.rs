//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the handful of external crates the workspace uses are
//! vendored as small, purpose-built implementations (see `vendor/` and the
//! dependency table in DESIGN.md). This crate keeps serde's *names* —
//! `Serialize`, `Deserialize`, `#[derive(Serialize, Deserialize)]`,
//! `#[serde(...)]` attributes — but swaps the visitor architecture for a
//! simple self-describing [`Value`] tree: serializing produces a `Value`,
//! deserializing consumes one. `serde_json` (also vendored) is the only
//! data format, and a `Value` tree round-trips through it losslessly for
//! every type this workspace derives.
//!
//! Supported attribute surface (the subset the workspace uses):
//! - container `#[serde(default)]` — missing fields fall back to the
//!   container's `Default`
//! - container `#[serde(transparent)]` — single-field newtype wrappers
//!   serialize as their inner value
//! - field `#[serde(default)]` and `#[serde(default = "path")]`
//! - enums in serde's externally-tagged representation: unit variants as
//!   `"Name"`, newtype variants as `{"Name": value}`, struct variants as
//!   `{"Name": {..fields..}}`

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized tree (the subset of JSON's data model the
/// workspace needs). Object keys keep insertion order so serialized output
/// matches field declaration order, exactly like real serde_json's default
/// (non-`preserve_order`-less) struct serialization.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|pairs| get_field(pairs, key))
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }
}

/// Missing-key / wrong-type indexing yields `Null`, like real
/// serde_json: `doc["traceEvents"][0]["ph"]` never panics mid-chain.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Look up a field in an object's pair list (helper for derived code).
pub fn get_field<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            v
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(concat!("{} out of range for ", stringify!($t)), n))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::custom(format!("{n} out of i64 range")))?,
                    _ => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            v
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(concat!("{} out of range for ", stringify!($t)), n))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

// 128-bit integers exceed the Value tree's numeric range; they ride as
// decimal strings (exact, self-describing, JSON-safe).
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s
                .parse::<u128>()
                .map_err(|_| Error::custom(format!("bad u128 literal {s:?}"))),
            Value::U64(n) => Ok(*n as u128),
            _ => Err(Error::custom(format!("expected u128, got {v:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(Error::custom(format!("expected f64, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(Error::custom(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(xs) if xs.len() == [$($idx),+].len() => {
                        Ok(($($name::from_value(&xs[$idx])?,)+))
                    }
                    _ => Err(Error::custom(format!("expected tuple array, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
    }

    #[test]
    fn unsigned_range_checked() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(u8::from_value(&Value::U64(255)).unwrap(), 255);
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
    }

    #[test]
    fn object_field_lookup_preserves_order() {
        let obj = Value::Object(vec![
            ("b".into(), Value::U64(2)),
            ("a".into(), Value::U64(1)),
        ]);
        assert_eq!(obj.get("a"), Some(&Value::U64(1)));
        assert_eq!(obj.get("missing"), None);
    }
}
