//! Quickstart: build the smallest interesting network, create one
//! congestion tree, and watch InfiniBand congestion control dissolve it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ibsim::prelude::*;
use ibsim_net::Network;

fn main() {
    // An 8-node two-level fat tree (4 leaf + 2 spine crossbars) with
    // the paper's link/CC parameters.
    let topo = FatTreeSpec::TEST_8.build();
    topo.validate().expect("topology is well-formed");
    println!(
        "topology: {} ({} switches, {} nodes)",
        topo.name,
        topo.switches.len(),
        topo.num_hcas
    );

    // Nodes 2,3,4,5,7 all blast full-rate traffic at node 0 — a
    // classic endpoint hotspot. Node 6 is an innocent bystander
    // sending to node 2; its packets share the leaf-to-spine uplink
    // with node 7's flood, right where the congestion tree grows.
    let build = |cc: bool| -> Network {
        let cfg = if cc {
            NetConfig::paper()
        } else {
            NetConfig::paper_no_cc()
        };
        let mut net = Network::new(&topo, cfg);
        for n in [2u32, 3, 4, 5, 7] {
            net.set_classes(
                n,
                vec![TrafficClass::new(
                    100,
                    DestPattern::Fixed(0),
                    PAPER_MSG_BYTES,
                )],
            );
        }
        net.set_classes(
            6,
            vec![TrafficClass::new(
                100,
                DestPattern::Fixed(2),
                PAPER_MSG_BYTES,
            )],
        );
        net
    };

    for cc in [false, true] {
        let mut net = build(cc);
        // Let the congestion tree form, then measure for 4 ms.
        net.run_until(Time::from_ms(2));
        net.start_measurement();
        net.run_until(Time::from_ms(6));
        net.stop_measurement();

        println!(
            "\ncongestion control {}:",
            if cc { "ENABLED " } else { "disabled" }
        );
        println!(
            "  hotspot (node 0) receives   {:6.2} Gbit/s",
            net.rx_gbps(0)
        );
        println!(
            "  bystander flow (6->2) gets  {:6.2} Gbit/s",
            net.rx_gbps(2)
        );
        println!(
            "  total network throughput    {:6.1} Gbit/s",
            net.total_rx_gbps()
        );
        if cc {
            println!(
                "  FECN marks: {}   BECNs: {}   deepest CCTI: {}",
                net.total_fecn_marks(),
                net.total_becns(),
                net.max_ccti()
            );
        }
    }

    println!(
        "\nThe hotspot is saturated either way — that is the receiver's own \
         limit — but with CC\nthe bystander flow no longer starves behind the \
         congestion tree."
    );
}
