//! Interactive-style tour of the CC parameter space on a fixed hotspot
//! scenario — what the paper calls "a nontrivial task" (§IV): bad
//! parameter choices genuinely misbehave, and this example shows the
//! failure modes next to the paper's Table I setting.
//!
//! ```text
//! cargo run --release --example cc_tuning
//! ```

use ibsim::prelude::*;

struct Variant {
    name: &'static str,
    why: &'static str,
    params: CcParams,
}

fn main() {
    let preset = Preset::Quick;
    let topo = preset.topology();
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: preset.num_hotspots(),
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let dur = preset.durations();

    let table1 = CcParams::paper_table1();
    table1.validate().unwrap();

    let variants = vec![
        Variant {
            name: "paper Table I",
            why: "the tuned setting the whole study runs on",
            params: table1.clone(),
        },
        Variant {
            name: "lenient threshold (w=1)",
            why: "detects congestion too late; trees grow before marking starts",
            params: CcParams {
                threshold: 1,
                ..table1.clone()
            },
        },
        Variant {
            name: "sparse marking (rate=31)",
            why: "too few FECNs; sources barely hear about congestion",
            params: CcParams {
                marking_rate: 31,
                ..table1.clone()
            },
        },
        Variant {
            name: "sluggish recovery (timer=1200)",
            why: "flows stay throttled long after congestion clears",
            params: CcParams {
                ccti_timer: 1200,
                ..table1.clone()
            },
        },
        Variant {
            name: "violent backoff (step=16)",
            why: "each BECN slams the brakes; the bottleneck underruns",
            params: CcParams {
                cct: Cct::populate(128, CctShape::Linear { step: 16 }),
                ..table1.clone()
            },
        },
        Variant {
            name: "SL-level throttling",
            why: "one guilty flow drags every flow of its service level down",
            params: CcParams {
                mode: CcMode::ServiceLevel,
                ..table1.clone()
            },
        },
    ];

    // CC-off reference.
    let mut cfg_off = preset.net_config();
    cfg_off.cc = None;
    let off = run_scenario(&topo, cfg_off, roles, dur, None);
    println!(
        "reference, CC disabled: victims {:.2} Gbit/s, hotspots {:.2} Gbit/s\n",
        off.non_hotspot_rx, off.hotspot_rx
    );

    let results = parallel_map(&variants, 0, |v| {
        let mut cfg = preset.net_config();
        cfg.cc = Some(v.params.clone());
        run_scenario(&topo, cfg, roles, dur, None)
    });

    println!(
        "{:<30} {:>10} {:>10} {:>9}",
        "setting", "victims", "hotspots", "total"
    );
    for (v, r) in variants.iter().zip(&results) {
        println!(
            "{:<30} {:>10.2} {:>10.2} {:>9.1}   # {}",
            v.name, r.non_hotspot_rx, r.hotspot_rx, r.total_rx, v.why
        );
    }

    let paper = &results[0];
    // The catastrophic detunings barely beat having no CC at all.
    assert!(
        results[1].total_rx < paper.total_rx * 0.5,
        "lenient threshold"
    );
    assert!(results[2].total_rx < paper.total_rx * 0.5, "sparse marking");
    assert!(results[5].total_rx < paper.total_rx * 0.5, "SL mode");
    // The brakes-heavy detunings pay for their victims at the hotspot.
    assert!(
        results[3].hotspot_rx < paper.hotspot_rx,
        "sluggish recovery"
    );
    assert!(results[4].hotspot_rx < paper.hotspot_rx, "violent backoff");
    println!(
        "\nTable I holds up: every detuning either lets the tree grow \
         (victims starve), overbrakes\n(the hotspot underruns), or punishes \
         innocents (SL mode)."
    );
}
