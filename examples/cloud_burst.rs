//! A virtualised-cluster scenario — the paper's motivating example for
//! *moving* congestion trees: "a cluster running a set of virtual
//! machines or virtual jobs, where the communication pattern is
//! unknown" (§III-C).
//!
//! Jobs come and go: every millisecond a different set of nodes turns
//! into an incast aggregation point. We sweep the churn rate and show
//! that congestion control keeps helping even as the pattern gets more
//! frantic — and that its advantage shrinks as the traffic itself
//! becomes the decongestant, exactly the trend of the paper's §V-C.
//!
//! ```text
//! cargo run --release --example cloud_burst
//! ```

use ibsim::prelude::*;

fn main() {
    let preset = Preset::Quick;
    let topo = preset.topology();
    // Every node is a B node: 60 % of its traffic goes to its job's
    // current aggregation point, 40 % is ordinary peer traffic.
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: preset.num_hotspots(),
        b_pct: 100,
        b_p: 60,
        c_pct_of_rest: 0,
    };
    let dur = preset.moving_durations();
    let lifetimes = preset.lifetimes();

    println!(
        "cloud burst: {} nodes, aggregation points move as jobs churn\n",
        topo.num_hcas
    );
    println!("churn (hotspot lifetime)   avg rx, CC off   avg rx, CC on   CC gain");

    let pairs = parallel_map(&lifetimes, 0, |&life| {
        run_cc_pair(&topo, &preset.net_config(), roles, dur, Some(life))
    });

    let mut last_gain = f64::INFINITY;
    let mut gains = Vec::new();
    for (life, pair) in lifetimes.iter().zip(&pairs) {
        let gain = pair.on.all_rx / pair.off.all_rx;
        println!(
            "{:>10.2} ms          {:>10.0} Mbit/s   {:>10.0} Mbit/s   {:>6.2}x",
            life.as_ms_f64(),
            pair.off.all_rx * 1e3,
            pair.on.all_rx * 1e3,
            gain
        );
        gains.push(gain);
        last_gain = gain;
    }

    println!(
        "\nCC never hurts ({} of {} churn rates improved), and the advantage \
         shrinks as churn rises:\nfast-moving hotspots dissolve their own \
         congestion trees before a control loop matters much.",
        gains.iter().filter(|&&g| g > 1.0).count(),
        gains.len()
    );
    assert!(
        last_gain >= 0.95,
        "CC should not hurt even at extreme churn"
    );
}
