//! A storage-checkpoint scenario — the paper's motivating example for
//! the *silent forest*: "a set of nodes sending large virtual image
//! files back to file servers" (§III-A).
//!
//! 72 compute nodes checkpoint to 2 storage servers while also
//! exchanging ordinary peer traffic. We compare how long the
//! checkpoint takes and what happens to the peer traffic, with and
//! without congestion control.
//!
//! ```text
//! cargo run --release --example storage_checkpoint
//! ```

use ibsim::prelude::*;
use ibsim_net::Network;

/// Bytes each compute node checkpoints to its storage server.
const CHECKPOINT_BYTES: u64 = 24 * 1024 * 1024; // 24 MiB per node

fn run(cc: bool) -> (f64, f64, f64) {
    let topo = FatTreeSpec::QUICK_72.build();
    let cfg = if cc {
        NetConfig::paper()
    } else {
        NetConfig::paper_no_cc()
    };
    let mut net = Network::new(&topo, cfg);

    // Nodes 0 and 36 act as storage servers (on different leafs);
    // every other node checkpoints to the nearer-numbered server while
    // chatting with peers.
    let servers = [0u32, 36];
    let msg = PAPER_MSG_BYTES;
    let ckpt_messages = CHECKPOINT_BYTES / msg as u64;
    for n in 0..72u32 {
        if servers.contains(&n) {
            continue;
        }
        let server = if n < 36 { servers[0] } else { servers[1] };
        net.set_classes(
            n,
            vec![
                // Checkpoint stream: as fast as allowed, finite volume.
                TrafficClass::new(70, DestPattern::Fixed(server), msg)
                    .with_max_messages(ckpt_messages),
                // Peer chatter keeps flowing the whole time.
                TrafficClass::new(30, DestPattern::UniformExceptSelf, msg),
            ],
        );
    }

    net.run_until(Time::from_ms(1));
    net.start_measurement();
    net.run_until(Time::from_ms(8));
    net.stop_measurement();

    let server_rx = (net.rx_gbps(servers[0]) + net.rx_gbps(servers[1])) / 2.0;
    let peer_rx: f64 = (0..72u32)
        .filter(|n| !servers.contains(n))
        .map(|n| net.rx_gbps(n))
        .sum::<f64>()
        / 70.0;

    // How much of the checkpoint volume made it to the servers so far?
    let ckpt_done: u64 = servers
        .iter()
        .map(|&s| net.hcas[s as usize].rx_meter.bytes())
        .sum();
    let ckpt_frac = ckpt_done as f64 / (70.0 * CHECKPOINT_BYTES as f64);
    (server_rx, peer_rx, ckpt_frac)
}

fn main() {
    println!("checkpointing 70 x 24 MiB to 2 storage servers, with peer chatter\n");
    let (srv_off, peer_off, done_off) = run(false);
    let (srv_on, peer_on, done_on) = run(true);
    println!("                         CC off    CC on");
    println!("storage server rx      {srv_off:7.2}  {srv_on:7.2}  Gbit/s");
    println!("peer traffic rx        {peer_off:7.2}  {peer_on:7.2}  Gbit/s (avg per node)");
    println!(
        "checkpoint progress    {:6.1}%  {:6.1}%  (of total volume, same wall-clock)",
        done_off * 100.0,
        done_on * 100.0
    );
    println!(
        "\nThe checkpoint drains at the servers' ingest limit either way; \
         congestion control keeps\nthe peer traffic alive instead of letting \
         the checkpoint's congestion tree smother it."
    );
    assert!(peer_on > peer_off, "CC should protect peer traffic");
}
