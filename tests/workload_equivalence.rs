//! The differential workload suite: the production-shaped generators
//! (incast, event-builder shifts, collectives, trace replay) are pinned
//! to each other and to the paper's native generators by *degenerate
//! equivalences* — parameter corners where two different generators
//! must produce the same traffic — and by the absolute sharding
//! contract (serial vs `set_shards(n)` byte-identical on the full
//! [`NetworkState`] tree, across seeds, fabrics and CC backends).
//!
//! The load-bearing corners:
//!
//! * incast with one sender and no stagger *is* a
//!   [`DestPattern::Fixed`] class — byte-identical to installing the
//!   paper generator by hand, which chains the whole incast family to
//!   the existing scenario goldens;
//! * a one-shift event builder at full fan-in *is* a linear-shift
//!   all-to-all — byte-identical to `collective:algo=a2a,rounds=1`;
//! * a synthesized uniform trace replayed through the streaming feeder
//!   statistically matches the native `UniformExceptSelf` generator at
//!   the same offered load.

use ibsim::prelude::*;
use ibsim_engine::time::PS_PER_US;
use ibsim_net::NetworkState;
use ibsim_state::diff_values;
use ibsim_traffic::{TraceFeeder, TraceGenSpec, TracePattern, WorkloadSpec};
use proptest::prelude::*;
use serde::Serialize;

fn us(v: u64) -> Time {
    Time::from_us(v)
}

/// The runner's feed/drain segment, mirrored here so the feeding
/// cadence in these tests matches `ibsim::workload::SEGMENT`.
const SEG_PS: u64 = 100 * PS_PER_US;

/// Build a fabric with a workload installed. For trace replay the
/// returned feeder streams the synthesized trace; scripted workloads
/// return `None`.
fn wl_net(
    topo: &Topology,
    seed: u64,
    dcqcn: bool,
    spec: &WorkloadSpec,
) -> (Network, Option<TraceFeeder>) {
    let cfg = if dcqcn {
        NetConfig::paper_dcqcn().with_seed(seed)
    } else {
        NetConfig::paper().with_seed(seed)
    };
    let mut net = Network::new(topo, cfg);
    let wl = spec.install(&mut net).expect("workload install");
    (net, wl.feeder)
}

/// Run to each capture instant, feeding the trace (if any) at fixed
/// 100 µs boundaries exactly as the runner does, and checkpoint.
fn trace_states(
    net: &mut Network,
    feeder: &mut Option<TraceFeeder>,
    captures: &[Time],
) -> Vec<NetworkState> {
    let mut out = Vec::new();
    let mut s = 0u64;
    for &cap in captures {
        while s < cap.0 {
            let next = (s + SEG_PS).min(cap.0);
            if let Some(f) = feeder.as_mut() {
                f.feed_until(net, Time(next + SEG_PS)).expect("feed");
            }
            net.run_until(Time(next));
            s = next;
        }
        out.push(net.checkpoint());
    }
    out
}

fn assert_states_equal(want: &[NetworkState], got: &[NetworkState], what: &str) {
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        if w != g {
            let diffs = diff_values(&w.to_value(), &g.to_value(), 10);
            panic!(
                "{what}: diverged at capture {} of {}:\n{}",
                i + 1,
                want.len(),
                ibsim_state::render_diff(&diffs)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Degenerate equivalences
// ---------------------------------------------------------------------

/// Incast with one sender and no stagger is byte-identical to a
/// hand-installed `DestPattern::Fixed` class: same events, same RNG
/// draws, same checkpoints, at every capture.
#[test]
fn incast_n1_is_byte_identical_to_fixed_class() {
    let topo = FatTreeSpec::TEST_8.build();
    let captures = [us(50), us(200), us(600)];
    let spec = WorkloadSpec::parse("incast:dst=3,fanin=1,bytes=2048,msgs=64,stagger_ns=0").unwrap();
    let (mut a, _) = wl_net(&topo, 0x1B51_C0DE, false, &spec);
    let want = trace_states(&mut a, &mut None, &captures);

    // The incast sender set is "first `fanin` nodes, skipping dst" —
    // here exactly node 0.
    let mut b = Network::new(&topo, NetConfig::paper().with_seed(0x1B51_C0DE));
    b.set_classes(
        0,
        vec![TrafficClass::new(100, DestPattern::Fixed(3), 2048).with_max_messages(64)],
    );
    let got = trace_states(&mut b, &mut None, &captures);
    assert_states_equal(&want, &got, "incast N=1 vs Fixed class");
}

/// A one-shift event builder at full fan-in is byte-identical to a
/// one-round linear-shift all-to-all collective: both install the same
/// `(i+1+k) mod n` schedule at the same release instants.
#[test]
fn one_shift_event_builder_equals_all_to_all() {
    let topo = FatTreeSpec::TEST_8.build();
    let captures = [us(40), us(150), us(500)];
    let eb = WorkloadSpec::parse("eb:frag=4096,fanin=7,shifts=1,slot_us=40").unwrap();
    let a2a = WorkloadSpec::parse("collective:algo=a2a,bytes=4096,rounds=1,slot_us=40").unwrap();
    let (mut a, _) = wl_net(&topo, 0xFEED, false, &eb);
    let want = trace_states(&mut a, &mut None, &captures);
    let (mut b, _) = wl_net(&topo, 0xFEED, false, &a2a);
    let got = trace_states(&mut b, &mut None, &captures);
    assert_states_equal(&want, &got, "one-shift EB vs all-to-all");
}

/// Replaying a synthesized uniform trace statistically matches the
/// native uniform generator at the same offered load: mean receive
/// rate within a tolerance band, uniform spread across nodes.
#[test]
fn trace_replay_of_uniform_matches_native_uniform() {
    let topo = FatTreeSpec::TEST_8.build();
    let n = topo.num_hcas as u32;
    let pct = 60;
    let bytes = 4096u32;

    // Native: every node offers pct% of the injection cap, uniform
    // destinations.
    let mut native = Network::new(&topo, NetConfig::paper().with_seed(7));
    for v in 0..n {
        native.set_classes(
            v,
            vec![TrafficClass::new(pct, DestPattern::UniformExceptSelf, bytes)],
        );
    }
    native.run_until(us(200));
    native.start_measurement();
    native.run_until(us(1200));
    native.stop_measurement();
    let native_avg: f64 = (0..n).map(|v| native.rx_gbps(v)).sum::<f64>() / n as f64;

    // Trace-shaped twin: same fabric-wide load, flows drawn uniformly,
    // streamed through the feeder at runner cadence.
    let gen = TraceGenSpec {
        seed: 7,
        ..TraceGenSpec::uniform_load(n, 50_000, bytes, 13.5, pct)
    };
    let path = std::env::temp_dir().join("ibsim_wl_equiv_uniform.ibtr");
    ibsim_traffic::flowtrace::synthesize_to(&gen, &path).unwrap();
    let mut replay = Network::new(&topo, NetConfig::paper().with_seed(7));
    for v in 0..n {
        replay.set_classes(v, vec![TrafficClass::script()]);
    }
    let mut feeder = Some(TraceFeeder::open(path.to_str().unwrap()).unwrap());
    trace_states(&mut replay, &mut feeder, &[us(200)]);
    replay.start_measurement();
    trace_states(&mut replay, &mut feeder, &[us(1200)]);
    replay.stop_measurement();
    let replay_avg: f64 = (0..n).map(|v| replay.rx_gbps(v)).sum::<f64>() / n as f64;

    let expect = 13.5 * pct as f64 / 100.0;
    assert!(
        (native_avg - expect).abs() / expect < 0.15,
        "native uniform off its own offered load: {native_avg} vs {expect}"
    );
    assert!(
        (replay_avg - native_avg).abs() / native_avg < 0.15,
        "trace replay {replay_avg} Gbit/s vs native uniform {native_avg} Gbit/s"
    );
    // Uniform spread: no node starves or hogs.
    for v in 0..n {
        let r = replay.rx_gbps(v);
        assert!(
            (r - replay_avg).abs() / replay_avg < 0.35,
            "node {v} rx {r} vs mean {replay_avg}"
        );
    }
}

// ---------------------------------------------------------------------
// Sharding contract across the whole generator family
// ---------------------------------------------------------------------

const GENERATORS: [&str; 6] = [
    "incast:dst=1,fanin=5,bytes=8192,msgs=16,stagger_ns=300",
    "eb:frag=4096,fanin=3,shifts=4,slot_us=40",
    "collective:algo=ring,bytes=65536,rounds=1,slot_us=30",
    "collective:algo=rd,bytes=16384,rounds=2,slot_us=30",
    "collective:algo=a2a,bytes=8192,rounds=2,slot_us=40",
    "trace",
];

/// Expand a template spec: `"trace"` synthesizes a per-seed hotspot
/// trace file; everything else parses as-is.
fn resolve_spec(topo: &Topology, seed: u64, spec_str: &str) -> WorkloadSpec {
    if spec_str != "trace" {
        return WorkloadSpec::parse(spec_str).unwrap();
    }
    let gen = TraceGenSpec {
        nodes: topo.num_hcas as u32,
        flows: 5_000,
        bytes: 2048,
        mean_gap_ns: 150,
        pattern: TracePattern::Hotspot {
            hotspots: 2,
            pct: 30,
        },
        seed,
    };
    let path = std::env::temp_dir().join(format!("ibsim_wl_equiv_{}_{seed:x}.ibtr", topo.num_hcas));
    ibsim_traffic::flowtrace::synthesize_to(&gen, &path).unwrap();
    WorkloadSpec::parse(&format!("trace:{}", path.display())).unwrap()
}

/// One serial-vs-sharded comparison: same workload, same seed, same
/// feeding cadence, full `NetworkState` equality at every capture.
fn assert_workload_shards_equal(
    topo: &Topology,
    seed: u64,
    dcqcn: bool,
    shards: usize,
    spec_str: &str,
    captures: &[Time],
) {
    let spec = resolve_spec(topo, seed, spec_str);
    let (mut serial, mut feed_a) = wl_net(topo, seed, dcqcn, &spec);
    let want = trace_states(&mut serial, &mut feed_a, captures);

    let (mut sharded, mut feed_b) = wl_net(topo, seed, dcqcn, &spec);
    sharded.set_shards(topo, shards);
    let got = trace_states(&mut sharded, &mut feed_b, captures);

    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if w != g {
            let diffs = diff_values(&w.to_value(), &g.to_value(), 10);
            panic!(
                "workload {spec_str:?} shards={shards} seed={seed:#x} dcqcn={dcqcn} \
                 diverged from serial at capture {} of {}:\n{}",
                i + 1,
                captures.len(),
                ibsim_state::render_diff(&diffs)
            );
        }
    }
}

/// Every generator, serial vs 2 and 4 shards, on the 2-level test
/// fabric — the everyday (cheap) slice of the matrix.
#[test]
fn generators_match_serial_on_fat8() {
    let topo = FatTreeSpec::TEST_8.build();
    let captures = [us(130), us(400)];
    for spec in GENERATORS {
        for shards in [2, 4] {
            assert_workload_shards_equal(&topo, 0x1B51_C0DE, false, shards, spec, &captures);
        }
    }
}

/// Every generator on the 3-level Clos: `ibsim-topo::partition` splits
/// by pod here, so this pins the workload family on multi-level
/// fabrics too.
#[test]
fn generators_match_serial_on_fattree3() {
    let topo = FatTree3Spec::TEST_8.build();
    let captures = [us(130), us(400)];
    for spec in GENERATORS {
        assert_workload_shards_equal(&topo, 0xB0B0, false, 2, spec, &captures);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The randomized slice: seeds × fabric × CC backend × shard count
    /// × generator, serial vs sharded byte-identical. Six cases per run
    /// keeps `cargo test` fast; the space is re-drawn every run.
    #[test]
    fn sharded_workloads_equal_serial(
        seed in any::<u64>(),
        fat3 in proptest::bool::ANY,
        dcqcn in proptest::bool::ANY,
        shards in 2usize..5,
        which in 0usize..GENERATORS.len(),
    ) {
        let topo = if fat3 {
            FatTree3Spec::TEST_8.build()
        } else {
            FatTreeSpec::TEST_8.build()
        };
        assert_workload_shards_equal(
            &topo, seed, dcqcn, shards, GENERATORS[which], &[us(250)],
        );
    }
}
