//! Shared warm-checkpoint fixture for the integration suites.
//!
//! The expensive part of most integration tests is simulating the
//! warmup window — identical for every invocation at the same topology,
//! seed and workload. This fixture caches that prefix as checkpoints
//! under `target/warm-checkpoints/` (wiped by `cargo clean`, rebuilt on
//! a miss) in two forms:
//!
//! * [`warm_until`] — library-level: fast-forward a freshly configured
//!   `Network` to `t`, restoring the cached prefix when one matches
//!   (topology digest + caller key + instant), else simulating and
//!   saving it for next time;
//! * [`enable_harness`] — process-wide: arm the `ibsim::checkpoint`
//!   toggles so every `run_scenario_*` call in the test binary saves at
//!   its warmup end on the first-ever invocation and resumes from the
//!   cache afterwards (checkpoint file names already encode fabric +
//!   workload, so distinct tests never collide).
//!
//! Round trips are byte-identical (pinned by `checkpoint_roundtrip.rs`),
//! so cached runs produce exactly the numbers a cold run would — as
//! long as the cache is *fresh*. A behaviour-changing edit makes cached
//! prefixes stale; `rm -rf target/warm-checkpoints` (or `cargo clean`)
//! after such edits. CI always starts cold.

#![allow(dead_code)] // each test binary uses the half it needs

use ibsim::prelude::*;
use ibsim_state::CheckpointHeader;
use serde::Deserialize;
use std::path::PathBuf;
use std::sync::Once;

pub fn warm_dir() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("warm-checkpoints")
}

/// Fast-forward `net` (freshly built, classes installed, not yet run)
/// to `t`, reusing the cached warm prefix for (`key`, fabric digest,
/// `t`) when present. `key` must distinguish everything the digest does
/// not — the installed traffic classes in particular.
pub fn warm_until(net: &mut Network, key: &str, t: Time) {
    let digest = ibsim::checkpoint::digest(net);
    let label = format!("warm-{key}-{}", t.as_ps());
    let path = warm_dir().join(ibsim::checkpoint::file_name(&digest, &label));

    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok((header, sv)) = ibsim_state::decode(&text) {
            if header.validate_topo(&digest).is_ok() && header.at_ps == t.as_ps() {
                if let Ok(state) = ibsim_net::NetworkState::from_value(&sv) {
                    if net.restore(&state).is_ok() {
                        return;
                    }
                }
            }
        }
        // Unreadable or mismatched cache entry: fall through and rebuild.
    }
    net.run_until(t);
    std::fs::create_dir_all(warm_dir()).ok();
    let header = CheckpointHeader::new(t.as_ps(), net.events_processed(), digest);
    let _ = ibsim_state::save(&path, &header, &net.checkpoint());
}

static HARNESS: Once = Once::new();

/// Arm the process-wide checkpoint toggles for this test binary: every
/// `run_scenario_*` call saves its state at `warmup_us` into the shared
/// cache and resumes from it when the file already exists. Call from
/// each test that goes through the experiment runners; the underlying
/// toggles are set once.
pub fn enable_harness(warmup_us: u64) {
    HARNESS.call_once(|| {
        let dir = warm_dir();
        ibsim::checkpoint::set_dir(&dir);
        ibsim::checkpoint::force_resume(Some(dir));
        ibsim::checkpoint::force_at(Some(Time::from_us(warmup_us)));
    });
}
