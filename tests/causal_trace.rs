//! The tentpole acceptance test for the causal tracer: follow victim
//! flows through a windy (fixed-hotspot) congestion tree and assert the
//! complete FECN → BECN → CCTI → throttle chain is captured — every
//! link present, every link in causal time order — plus the export
//! contracts (Perfetto JSON round-trips, CSV stays rectangular).
//!
//! The scenario is the paper's Table II congested cell in miniature:
//! TEST_8, one hotspot, 80% of the remaining nodes contributing at
//! full rate, CC on. Contributors overrun the hotspot's egress, the
//! switch FECN-marks granted packets, the destination queues CNPs, and
//! the sources' CCTIs rise until the injection-rate delay bites. Every
//! one of those steps must land in the trace as a paired chain.

use ibsim::prelude::*;
use ibsim_net::{causal_chains, chrome_trace_json, records_csv, CausalChain, TracePoint};

/// Build the windy fabric with every contributor→hotspot flow traced,
/// run warmup + measure, and hand back the network plus hotspot id.
fn traced_windy_run() -> (Network, u32) {
    let topo = FatTreeSpec::TEST_8.build();
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let mut net = Network::new(&topo, NetConfig::paper());
    let sc = Scenario::install_opts(roles, &mut net, PAPER_MSG_BYTES, true);
    let hotspot = sc.assignment.hotspots[0];
    net.enable_trace(
        (0..topo.num_hcas as u32)
            .filter(|&n| n != hotspot)
            .map(|n| (n, hotspot)),
    );
    net.run_until(Time::from_us(700));
    (net, hotspot)
}

#[test]
fn windy_victim_flow_yields_complete_causal_chains() {
    let (net, hotspot) = traced_windy_run();
    let tracer = net.tracer().expect("tracing was enabled");
    assert!(
        !tracer.records().is_empty(),
        "a congested run must produce trace records"
    );

    let chains = causal_chains(tracer.records());
    assert!(!chains.is_empty(), "FECN marks must start causal chains");
    let complete: Vec<&CausalChain> = chains.iter().filter(|c| c.complete()).collect();
    assert!(
        !complete.is_empty(),
        "at least one chain must run mark → CNP queued → inject → \
         deliver → CCTI raise → throttle; got {} partial chains",
        chains.len()
    );

    for c in &complete {
        let (src, dst) = c.flow;
        assert_eq!(dst, hotspot, "chains belong to traced victim flows");
        assert_ne!(src, hotspot);
        // Causal time order, link by link.
        let (mark_at, mark_sw) = c.mark.expect("complete");
        let inject_at = c.cnp_inject_at.expect("complete");
        let deliver_at = c.cnp_deliver_at.expect("complete");
        let (raise_at, before, after) = c.ccti_raise.expect("complete");
        let (throttle_at, delay_ps) = c.throttle.expect("complete");
        assert!(
            mark_at <= c.cnp_queued_at,
            "the FECN mark precedes the CNP it provokes"
        );
        assert!(c.cnp_queued_at <= inject_at, "queued before injected");
        assert!(inject_at < deliver_at, "the CNP takes time to travel");
        assert_eq!(
            deliver_at, raise_at,
            "the CCTI raise is recorded by the CNP drain event"
        );
        assert_eq!(throttle_at, raise_at, "the throttle arms at the raise");
        assert!(after > before, "a raise must raise");
        assert!(delay_ps > 0, "a throttle must delay");
        assert!((mark_sw as usize) < 100, "mark names a real switch");
    }

    // The marked data packet's own lifecycle is on record too: the
    // chain key resolves through the O(hits) packet index to a
    // lifecycle that starts with Inject and passes the marking switch.
    let c = complete[0];
    let life = tracer.packet(c.flow.0, c.flow.1, c.data_seq);
    assert!(!life.is_empty(), "the marked packet has lifecycle records");
    assert_eq!(life[0].point, TracePoint::Inject);
    let (_, mark_sw) = c.mark.unwrap();
    assert!(
        life.iter().any(|r| matches!(
            r.point,
            TracePoint::Forward { switch, fecn: true, .. } if switch == mark_sw
        )),
        "the lifecycle contains the FECN-marked grant itself"
    );
    // Records carry hop context: some grant near the hotspot saw a
    // non-empty VoQ (that is what provoked the mark).
    assert!(
        life.iter()
            .any(|r| matches!(r.point, TracePoint::Forward { .. }) && r.voq > 0),
        "a congested grant must see queued descriptors"
    );
}

#[test]
fn windy_trace_exports_parse_and_stay_rectangular() {
    let (net, _) = traced_windy_run();
    let tracer = net.tracer().unwrap();

    // Perfetto / Chrome trace-event JSON: chain arrows present, and the
    // document survives a serialise → parse round trip (the same check
    // the CI observability leg performs with python's json module).
    let doc = chrome_trace_json(tracer.records());
    let text = serde_json::to_string(&doc).expect("trace doc serialises");
    let back: serde_json::Value = serde_json::from_str(&text).expect("round-trips");
    let events = back["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    let count = |ph: &str| events.iter().filter(|e| e["ph"] == ph).count();
    assert!(count("s") > 0, "causal chains start flow arrows");
    assert!(count("f") > 0, "complete chains finish flow arrows");
    assert_eq!(count("b"), count("e"), "async spans pair up");

    // Flat CSV: rectangular, capture order, one row per record.
    let csv = records_csv(tracer.records());
    let rows: Vec<&str> = csv.lines().collect();
    assert_eq!(rows.len(), tracer.records().len() + 1);
    let width = rows[0].split(',').count();
    assert!(rows.iter().all(|r| r.split(',').count() == width));
}
