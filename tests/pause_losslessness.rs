//! The `PauseLosslessness` ledger under fire.
//!
//! PFC's whole contract is that a paused ingress loses nothing. The
//! armed-oracle test commits exactly the crime the ledger exists to
//! catch — packets silently discarded from an ingress while its pause
//! is standing — and demands a violation naming the switch, port and
//! priority. The observational test pins the oracle's other half: with
//! no crime, auditing a DCQCN run must not change a single byte of its
//! result.

use ibsim::prelude::*;
use ibsim_cc::CcBackend;
use ibsim_check::LedgerKind;
use std::sync::Mutex;

/// One test at a time may own the process-wide toggles.
static TOGGLES: Mutex<()> = Mutex::new(());

fn hotspot_net(xoff: u32, xon: u32) -> (Network, Topology) {
    let topo = FatTreeSpec::TEST_8.build();
    let mut cfg = NetConfig::paper_dcqcn();
    cfg.dcqcn.pfc_xoff_blocks = xoff;
    cfg.dcqcn.pfc_xon_blocks = xon;
    let mut net = Network::new(&topo, cfg);
    let hot = vec![TrafficClass::new(100, DestPattern::Fixed(0), 4096)];
    for n in 1..topo.num_hcas as u32 {
        net.set_classes(n, hot.clone());
    }
    (net, topo)
}

/// Walk the fabric for a standing pause: `(switch, port, vl)` with
/// `rx_paused` latched.
fn find_paused(net: &Network) -> Option<(usize, u16, u8)> {
    for (si, sw) in net.switches.iter().enumerate() {
        for p in 0..sw.radix() as u16 {
            for vl in 0..sw.n_vls() {
                if sw.rx_paused(p, vl) {
                    return Some((si, p, vl));
                }
            }
        }
    }
    None
}

/// A drop during a pause window trips the oracle, and the violation
/// names the paused port and priority.
#[test]
fn drop_during_pause_window_is_caught_and_named() {
    // Aggressive thresholds: the 7-into-1 hotspot pauses within a few
    // hundred microseconds.
    let (mut net, _topo) = hotspot_net(48, 16);
    net.enable_audit(u64::MAX); // end-of-run / on-demand passes only

    let mut paused = None;
    for step in 1..=60u64 {
        net.run_until(Time::from_us(step * 10));
        paused = find_paused(&net);
        if paused.is_some() {
            break;
        }
    }
    let (si, p, vl) = paused.expect("the hotspot must pause an ingress within 600 us");

    // The crime: discard queued packets from the paused ingress until
    // its occupancy falls to the XON threshold — the drain that, in a
    // correct fabric, can only happen through a resume.
    let mut dropped = 0;
    while net.switches[si].buffered_blocks(p, vl) > 16 {
        if net.drop_queued_for_test(si, p).is_none() {
            break;
        }
        dropped += 1;
    }
    assert!(dropped > 0, "a paused ingress must be holding packets");

    let report = net.audit_now();
    let v = report
        .violations
        .iter()
        .find(|v| v.ledger == LedgerKind::PauseLosslessness)
        .unwrap_or_else(|| {
            panic!(
                "dropping {dropped} packet(s) from a paused ingress must \
                 trip the pause-losslessness ledger:\n{}",
                report.render()
            )
        });
    let expect = format!("switch {si} port {p} VL {vl}");
    assert_eq!(
        v.subject, expect,
        "the violation must name the paused port and priority"
    );
    assert!(
        report.has_unsanctioned(),
        "pause-losslessness violations are never sanctioned"
    );
}

/// Pause/resume pairing: a clean dcqcn run audits with zero
/// pause-losslessness entries, and every pause the fabric ever sent is
/// matched by a resume or still standing at the pass.
#[test]
fn clean_dcqcn_run_pairs_every_pause() {
    let (mut net, _topo) = hotspot_net(48, 16);
    net.enable_audit(10_000);
    net.run_until(Time::from_us(600));
    let report = net.audit_now();
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        net.total_pfc_pauses() > 0,
        "the aggressive thresholds must pause at least once"
    );
}

/// The oracle is observational under dcqcn: an audited run produces
/// byte-identical results to an unaudited one.
#[test]
fn dcqcn_audit_on_equals_audit_off() {
    let _guard = TOGGLES.lock().unwrap();
    let topo = FatTreeSpec::TEST_8.build();
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let dur = RunDurations {
        warmup: TimeDelta::from_us(200),
        measure: TimeDelta::from_us(500),
    };
    ibsim::backend::force(CcBackend::Dcqcn);
    let run = |audit: bool| {
        ibsim::audit::force(audit);
        let r = run_scenario(&topo, NetConfig::paper(), roles, dur, None);
        serde_json::to_string(&r).expect("serialise result")
    };
    let with = run(true);
    let without = run(false);
    ibsim::audit::force(false);
    ibsim::backend::clear();
    assert_eq!(with, without, "the oracle must be observational under dcqcn");
}
