//! Round-trip guarantees of the checkpoint subsystem.
//!
//! The contract under test: `run_until(T); save; restore onto a fresh
//! fabric; run_until(H)` holds state *identical* to running straight
//! to `H` — with every stateful overlay armed (faults mid-window,
//! the invariant audit, telemetry sampling). Identity is checked on
//! the full [`NetworkState`] tree (event queue with original `(time,
//! seq)` keys, every buffer, CCTI, ledger and sample row), which is
//! strictly stronger than comparing end-of-run CSVs.
//!
//! Also here: the corruption/negative paths (bumped format version,
//! truncated payload, wrong magic, checkpoint from a different fabric
//! — all structured errors, never panics) and the committed golden
//! checkpoint the CI leg diffs structurally (re-bless with
//! `IBSIM_BLESS=1 cargo test`).

use ibsim::prelude::*;
use ibsim_net::{NetworkSnapshot, NetworkState};
use ibsim_state::{
    diff_values, CheckpointHeader, StateError, TopoDigest, FORMAT_VERSION,
    FORMAT_VERSION_DCQCN, MAGIC,
};
use ibsim_telemetry::TelemetryConfig;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Serialises tests that flip the process-wide checkpoint toggles
/// (`ibsim::checkpoint::force_at` & co.); the cargo test harness runs
/// tests of one binary on parallel threads.
static TOGGLES: Mutex<()> = Mutex::new(());

const FAULT_SPEC: &str = "becnloss:link=hcas,p=0.5;flap:link=hca:1,at=300us,dur=100us,factor=stall";

/// A fully loaded tiny fabric: TEST_8 fat-tree, one hotspot, CC as
/// requested, fault schedule with an open flap window mid-run, audit
/// and telemetry armed. Deterministic: two calls build identical nets.
fn loaded_net(seed: u64, cc: bool, faults: bool) -> Network {
    let topo = FatTreeSpec::TEST_8.build();
    let mut cfg = NetConfig::paper().with_seed(seed);
    if !cc {
        cfg.cc = None;
    }
    let mut net = Network::new(&topo, cfg);
    net.enable_audit(20_000);
    net.enable_telemetry(TelemetryConfig::every(TimeDelta::from_us(50)));
    if faults {
        let schedule = FaultSchedule::from_spec(FAULT_SPEC, seed).expect("valid fault spec");
        net.install_faults(schedule);
    }
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let _sc = Scenario::install_opts(roles, &mut net, PAPER_MSG_BYTES, true);
    net
}

/// The dcqcn twin of [`loaded_net`]: same fabric, scenario and overlays,
/// but the congestion control runs the DCQCN/PFC backend (rate machine
/// state on every HCA, pause state on every switch port — all of which
/// the v2 checkpoint must carry).
fn loaded_dcqcn_net(seed: u64, faults: bool) -> Network {
    let topo = FatTreeSpec::TEST_8.build();
    let cfg = NetConfig::paper_dcqcn().with_seed(seed);
    let mut net = Network::new(&topo, cfg);
    net.enable_audit(20_000);
    net.enable_telemetry(TelemetryConfig::every(TimeDelta::from_us(50)));
    if faults {
        let schedule = FaultSchedule::from_spec(FAULT_SPEC, seed).expect("valid fault spec");
        net.install_faults(schedule);
    }
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let _sc = Scenario::install_opts(roles, &mut net, PAPER_MSG_BYTES, true);
    net
}

/// The core identity check: interrupted and uninterrupted runs reach
/// byte-identical state at the horizon.
fn assert_roundtrip(seed: u64, cc: bool, faults: bool, ck_at_ps: u64, horizon_ps: u64) {
    let ck_at = Time(ck_at_ps);
    let horizon = Time(horizon_ps);

    let mut straight = loaded_net(seed, cc, faults);
    straight.run_until(ck_at);
    let saved = straight.checkpoint();
    straight.run_until(horizon);
    let want = straight.checkpoint();

    let mut resumed = loaded_net(seed, cc, faults);
    resumed
        .restore(&saved)
        .expect("restore onto an identically configured fabric");
    resumed.run_until(horizon);
    let got = resumed.checkpoint();

    assert_eq!(
        NetworkSnapshot::capture(&resumed),
        NetworkSnapshot::capture(&straight),
        "diag snapshots diverged after resume (seed={seed} cc={cc} faults={faults} ck={ck_at_ps})"
    );
    if want != got {
        let diffs = diff_values(&want.to_value(), &got.to_value(), 10);
        panic!(
            "resumed state diverged (seed={seed} cc={cc} faults={faults} ck={ck_at_ps}):\n{}",
            ibsim_state::render_diff(&diffs)
        );
    }
}

#[test]
fn roundtrip_mid_warmup_cc_on() {
    assert_roundtrip(0x1B51_C0DE, true, true, 150_000_000, 700_000_000);
}

#[test]
fn roundtrip_inside_fault_window_cc_on() {
    // 350 µs: the flap window (300–400 µs) is open at capture time.
    assert_roundtrip(0x1B51_C0DE, true, true, 350_000_000, 700_000_000);
}

#[test]
fn roundtrip_cc_off() {
    assert_roundtrip(0x1B51_C0DE, false, true, 350_000_000, 700_000_000);
}

#[test]
fn roundtrip_no_faults() {
    assert_roundtrip(0x1B51_C0DE, true, false, 250_000_000, 700_000_000);
}

#[test]
fn roundtrip_at_zero_and_at_horizon() {
    // Degenerate capture points: before the first event and at the end.
    assert_roundtrip(7, true, true, 0, 400_000_000);
    assert_roundtrip(7, true, true, 400_000_000, 400_000_000);
}

/// The dcqcn identity check: a v2 checkpoint mid-run — rate machines in
/// every increase stage, standing pauses, queued CNPs — restores onto a
/// fresh dcqcn fabric and reaches byte-identical state at the horizon.
fn assert_dcqcn_roundtrip(seed: u64, faults: bool, ck_at_ps: u64, horizon_ps: u64) {
    let ck_at = Time(ck_at_ps);
    let horizon = Time(horizon_ps);

    let mut straight = loaded_dcqcn_net(seed, faults);
    straight.run_until(ck_at);
    let saved = straight.checkpoint();
    straight.run_until(horizon);
    let want = straight.checkpoint();

    let mut resumed = loaded_dcqcn_net(seed, faults);
    resumed
        .restore(&saved)
        .expect("restore onto an identically configured dcqcn fabric");
    resumed.run_until(horizon);
    let got = resumed.checkpoint();

    if want != got {
        let diffs = diff_values(&want.to_value(), &got.to_value(), 10);
        panic!(
            "resumed dcqcn state diverged (seed={seed} faults={faults} ck={ck_at_ps}):\n{}",
            ibsim_state::render_diff(&diffs)
        );
    }
}

#[test]
fn roundtrip_dcqcn_inside_fault_window() {
    // 350 µs: the flap window is open and CNP-loss coin flips are live.
    assert_dcqcn_roundtrip(0x1B51_C0DE, true, 350_000_000, 700_000_000);
}

#[test]
fn roundtrip_dcqcn_no_faults() {
    assert_dcqcn_roundtrip(0x1B51_C0DE, false, 250_000_000, 700_000_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any capture instant in [0, horizon], any seed, either CC mode,
    /// with or without faults: the round trip is exact.
    #[test]
    fn roundtrip_is_exact_everywhere(
        seed in 0u64..1_000,
        cc in proptest::bool::ANY,
        faults in proptest::bool::ANY,
        ck_us in 0u64..=500,
    ) {
        assert_roundtrip(seed, cc, faults, ck_us * 1_000_000, 500_000_000);
    }
}

// ---------------------------------------------------------------------
// Negative paths: every way a restore can go wrong is a structured
// error naming the mismatch — never a panic, never a silent cold start.
// ---------------------------------------------------------------------

fn tiny_checkpoint() -> (CheckpointHeader, NetworkState, Network) {
    let mut net = loaded_net(3, true, true);
    net.run_until(Time::from_us(200));
    let digest = ibsim::checkpoint::digest(&net);
    let header = CheckpointHeader::new(net.now().as_ps(), net.events_processed(), digest);
    let state = net.checkpoint();
    (header, state, net)
}

#[test]
fn bumped_version_is_rejected_with_both_versions_named() {
    let (mut header, state, _net) = tiny_checkpoint();
    header.version = FORMAT_VERSION + 1;
    let text = ibsim_state::encode(&header, &state);
    match ibsim_state::decode(&text) {
        Err(StateError::VersionMismatch { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let (mut header, state, _net) = tiny_checkpoint();
    header.magic = "telemetry-csv".into();
    let text = ibsim_state::encode(&header, &state);
    match ibsim_state::decode(&text) {
        Err(StateError::BadMagic { found }) => assert_eq!(found, "telemetry-csv"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn truncated_payload_is_rejected_not_panicking() {
    let (header, state, _net) = tiny_checkpoint();
    let text = ibsim_state::encode(&header, &state);
    // Chop at several depths: mid-header, mid-state, last byte.
    for cut in [text.len() / 50, text.len() / 2, text.len() - 1] {
        let err = ibsim_state::decode(&text[..cut]).expect_err("truncated text must not decode");
        let msg = err.to_string();
        assert!(
            matches!(err, StateError::Truncated { .. } | StateError::Corrupt { .. }),
            "cut at {cut}: expected Truncated/Corrupt, got {msg}"
        );
        assert!(!msg.is_empty());
    }
}

#[test]
fn checkpoint_from_different_fabric_is_rejected_naming_the_field() {
    let (header, state, _net) = tiny_checkpoint();
    // A different fabric: one switch, four HCAs.
    let topo = single_switch(4, 2);
    let mut other = Network::new(&topo, NetConfig::paper());
    let live = ibsim::checkpoint::digest(&other);
    match header.validate_topo(&live) {
        Err(StateError::TopologyMismatch { field, found, expected }) => {
            assert_eq!(field, "switches");
            assert_ne!(found, expected);
        }
        other => panic!("expected TopologyMismatch, got {other:?}"),
    }
    // The state-level restore also refuses, naming the count mismatch.
    let err = other.restore(&state).expect_err("cross-fabric restore must fail");
    assert!(err.contains("switches"), "unhelpful error: {err}");
}

#[test]
fn dcqcn_checkpoint_into_ibcc_fabric_is_refused_naming_backends() {
    // Header gate: the topology digest carries the backend tag, and a
    // dcqcn checkpoint offered to an ibcc fabric is refused *before*
    // any state is decoded, naming both tags.
    let mut dc = loaded_dcqcn_net(3, true);
    dc.run_until(Time::from_us(200));
    let digest = ibsim::checkpoint::digest(&dc);
    assert_eq!(digest.backend, "dcqcn");
    let header = CheckpointHeader::new(dc.now().as_ps(), dc.events_processed(), digest);
    assert_eq!(header.version, FORMAT_VERSION_DCQCN);

    let ib = loaded_net(3, true, true);
    match header.validate_topo(&ibsim::checkpoint::digest(&ib)) {
        Err(StateError::TopologyMismatch {
            field,
            found,
            expected,
        }) => {
            assert_eq!(field, "backend");
            assert_eq!(found, "dcqcn");
            assert_eq!(expected, "ibcc");
        }
        other => panic!("expected TopologyMismatch on backend, got {other:?}"),
    }

    // State gate: even a bare state-tree restore (no header in the
    // path) refuses the mix. The switch guard fires first — a dcqcn
    // tree carries PFC sections an ibcc switch has no home for; the
    // per-HCA cc guard behind it names both backends (pinned by
    // `restore_refuses_a_backend_mismatch` in `ibsim-cc`).
    let mut ib = ib;
    let err = ib
        .restore(&dc.checkpoint())
        .expect_err("cross-backend restore must fail");
    assert!(
        err.contains("pfc") || err.contains("backend mismatch"),
        "unhelpful error: {err}"
    );
}

#[test]
fn dcqcn_header_claiming_v1_is_rejected() {
    // The version gate is backend-aware: a dcqcn digest must carry v2,
    // so a header claiming the ibcc version is refused with the version
    // dcqcn checkpoints are written at.
    let mut dc = loaded_dcqcn_net(3, false);
    dc.run_until(Time::from_us(100));
    let mut header = CheckpointHeader::new(
        dc.now().as_ps(),
        dc.events_processed(),
        ibsim::checkpoint::digest(&dc),
    );
    header.version = FORMAT_VERSION;
    let text = ibsim_state::encode(&header, &dc.checkpoint());
    match ibsim_state::decode(&text) {
        Err(StateError::VersionMismatch { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION);
            assert_eq!(expected, FORMAT_VERSION_DCQCN);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn overlay_mismatch_is_rejected() {
    // Checkpoint without faults, restore into a fabric with a schedule
    // installed (and vice versa): both directions are structured errors.
    let mut plain = loaded_net(5, true, false);
    plain.run_until(Time::from_us(100));
    let no_fault_state = plain.checkpoint();
    let mut faulted = loaded_net(5, true, true);
    let err = faulted
        .restore(&no_fault_state)
        .expect_err("fault-overlay mismatch must fail");
    assert!(err.contains("fault"), "unhelpful error: {err}");

    faulted.run_until(Time::from_us(100));
    let fault_state = faulted.checkpoint();
    let mut plain2 = loaded_net(5, true, false);
    let err = plain2
        .restore(&fault_state)
        .expect_err("fault-overlay mismatch must fail");
    assert!(err.contains("fault"), "unhelpful error: {err}");
}

#[test]
fn corrupt_telemetry_cadence_is_rejected() {
    // A cadence position that is not a multiple of the sampling period
    // is structurally impossible; restore must reject it rather than
    // trip the sampler's internal assertion later.
    let (_header, mut state, _net) = tiny_checkpoint();
    let tel = state.telemetry.as_mut().expect("telemetry armed");
    tel.cadence_next = Time(tel.cadence_next.as_ps() + 1);
    let mut net = loaded_net(3, true, true);
    let err = net.restore(&state).expect_err("off-cadence restore must fail");
    assert!(err.contains("cadence"), "unhelpful error: {err}");
}

// ---------------------------------------------------------------------
// Harness-level resume: the run_scenario_* entry points save at
// --checkpoint-at and resume from --resume-from with byte-identical
// results, across plain, measured and moving-hotspot runs.
// ---------------------------------------------------------------------

fn tiny_roles(topo: &Topology) -> RoleSpec {
    RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    }
}

fn tiny_dur() -> RunDurations {
    RunDurations {
        warmup: TimeDelta::from_us(200),
        measure: TimeDelta::from_us(500),
    }
}

fn scenario_json(lifetime: Option<TimeDelta>, faults: Option<&FaultSchedule>) -> String {
    let topo = FatTreeSpec::TEST_8.build();
    let r = run_scenario_faults(
        &topo,
        NetConfig::paper(),
        tiny_roles(&topo),
        tiny_dur(),
        lifetime,
        true,
        faults,
    );
    serde_json::to_string(&r).expect("serialise result")
}

fn assert_harness_resume(ck_us: u64, lifetime: Option<TimeDelta>, faults: Option<&FaultSchedule>) {
    let _guard = TOGGLES.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!(
        "ibsim_ckpt_rt_{}_{ck_us}_{}",
        std::process::id(),
        lifetime.map_or(0, |l| l.as_ps()),
    ));
    std::fs::remove_dir_all(&dir).ok();

    ibsim::checkpoint::force_at(None);
    ibsim::checkpoint::force_resume(None);
    let baseline = scenario_json(lifetime, faults);

    // Pass 1: save a checkpoint mid-run (the save must not perturb).
    ibsim::checkpoint::set_dir(&dir);
    ibsim::checkpoint::force_at(Some(Time::from_us(ck_us)));
    let saving = scenario_json(lifetime, faults);
    assert_eq!(saving, baseline, "saving a checkpoint perturbed the run");
    assert_eq!(
        std::fs::read_dir(&dir).expect("checkpoint dir").count(),
        1,
        "expected exactly one checkpoint file"
    );

    // Pass 2: resume from it.
    ibsim::checkpoint::force_at(None);
    ibsim::checkpoint::force_resume(Some(dir.clone()));
    let resumed = scenario_json(lifetime, faults);
    assert_eq!(resumed, baseline, "resumed run diverged from baseline");

    ibsim::checkpoint::force_resume(None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn harness_resume_mid_warmup() {
    assert_harness_resume(100, None, None);
}

#[test]
fn harness_resume_mid_measurement() {
    assert_harness_resume(450, None, None);
}

#[test]
fn harness_resume_moving_hotspots_mid_epoch() {
    // 150 µs epochs; 475 µs is mid-epoch, past warmup, after 3 moves.
    assert_harness_resume(475, Some(TimeDelta::from_us(150)), None);
}

#[test]
fn harness_resume_moving_hotspots_at_epoch_boundary() {
    // 450 µs is exactly an epoch boundary: the capture lands before the
    // move at 450 µs, which the resumed run must re-execute.
    assert_harness_resume(450, Some(TimeDelta::from_us(150)), None);
}

#[test]
fn harness_resume_under_faults() {
    let schedule = FaultSchedule::from_spec(FAULT_SPEC, 0x1B51_C0DE).expect("valid spec");
    assert_harness_resume(350, None, Some(&schedule));
}

// ---------------------------------------------------------------------
// Golden checkpoint: the committed snapshot the CI leg diffs against.
// ---------------------------------------------------------------------

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare a freshly produced checkpoint against a committed golden
/// file *structurally* (header equality + field-by-field state diff),
/// so a failure names drifted fields instead of dumping two JSON blobs.
/// `restore_into` is a fresh fabric configured like the one the golden
/// was taken on; the decoded golden must restore and run on it.
fn assert_matches_golden(
    name: &str,
    header: &CheckpointHeader,
    state: &NetworkState,
    mut restore_into: Network,
) {
    let path = golden_path(name);
    let text = ibsim_state::encode(header, state);
    if std::env::var("IBSIM_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden checkpoint {} ({e}); run IBSIM_BLESS=1 cargo test to create it",
            path.display()
        )
    });
    let (golden_header, golden_state) =
        ibsim_state::decode(&golden_text).expect("committed golden checkpoint decodes");
    assert_eq!(
        &golden_header, header,
        "golden checkpoint header drifted ({name})"
    );
    let diffs = diff_values(&golden_state, &state.to_value(), 25);
    assert!(
        diffs.is_empty(),
        "simulator state at the golden capture point drifted ({name}):\n{}",
        ibsim_state::render_diff(&diffs)
    );
    // And the golden file still restores and runs on a live fabric.
    let decoded = NetworkState::from_value(&golden_state).expect("golden state decodes");
    restore_into.restore(&decoded).expect("golden state restores");
    restore_into.run_until(Time::from_us(700));
}

/// TEST_8-scale golden: runs on every `cargo test`.
#[test]
fn golden_tiny_checkpoint_is_stable() {
    let mut net = loaded_net(0x1B51_C0DE, true, true);
    net.run_until(Time::from_us(350));
    let header = CheckpointHeader::new(
        net.now().as_ps(),
        net.events_processed(),
        ibsim::checkpoint::digest(&net),
    );
    assert_matches_golden(
        "tiny_test8.ckpt.json",
        &header,
        &net.checkpoint(),
        loaded_net(0x1B51_C0DE, true, true),
    );
}

/// Format-v2 golden: the dcqcn twin of the tiny golden, capturing rate
/// machines, PFC pause state and queued CNPs at the same instant. The
/// committed file pins the v2 schema itself — any drift in the
/// backend-tagged state tree fails here naming the field.
#[test]
fn golden_tiny_dcqcn_checkpoint_is_stable() {
    let mut net = loaded_dcqcn_net(0x1B51_C0DE, true);
    net.run_until(Time::from_us(350));
    let header = CheckpointHeader::new(
        net.now().as_ps(),
        net.events_processed(),
        ibsim::checkpoint::digest(&net),
    );
    assert_eq!(header.version, FORMAT_VERSION_DCQCN);
    assert_eq!(header.topo.backend, "dcqcn");
    assert_matches_golden(
        "tiny_test8_dcqcn.ckpt.json",
        &header,
        &net.checkpoint(),
        loaded_dcqcn_net(0x1B51_C0DE, true),
    );
}

/// The committed tiny golden, reproduced under every shard count. The
/// fully-loaded fixture has telemetry armed and a BECN-loss schedule
/// installed — both serial-fallback conditions — so what this pins is
/// the *boundary*: a `set_shards` call on such a run must be byte-free,
/// falling back to the serial engine without perturbing a single field
/// of the committed file.
#[test]
fn golden_tiny_checkpoint_is_stable_under_shards() {
    let topo = FatTreeSpec::TEST_8.build();
    for n in [1, 2, 4, 8] {
        let mut net = loaded_net(0x1B51_C0DE, true, true);
        net.set_shards(&topo, n);
        net.run_until(Time::from_us(350));
        let header = CheckpointHeader::new(
            net.now().as_ps(),
            net.events_processed(),
            ibsim::checkpoint::digest(&net),
        );
        assert_matches_golden(
            "tiny_test8.ckpt.json",
            &header,
            &net.checkpoint(),
            loaded_net(0x1B51_C0DE, true, true),
        );
    }
}

/// Quick-preset golden (72 nodes, capture at 3 ms in the CC-on hotspot
/// cell): `#[ignore]`d for the debug-build loop; CI runs it in the
/// release job alongside the determinism hash pin.
#[test]
#[ignore = "simulates 3 ms on 72 nodes; run with --release -- --ignored"]
fn golden_quick_checkpoint_is_stable() {
    let preset = Preset::Quick;
    let topo = preset.topology();
    let cfg = preset.net_config();
    let mut net = Network::new(&topo, cfg);
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: preset.num_hotspots(),
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let _sc = Scenario::install_opts(roles, &mut net, PAPER_MSG_BYTES, true);
    net.run_until(Time::from_ms(3));
    let header = CheckpointHeader::new(
        net.now().as_ps(),
        net.events_processed(),
        ibsim::checkpoint::digest(&net),
    );
    let path = golden_path("quick_cc_on.ckpt.json");
    let text = ibsim_state::encode(&header, &net.checkpoint());
    if std::env::var("IBSIM_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden checkpoint {} ({e}); run IBSIM_BLESS=1 cargo test --release -- --ignored to create it",
            path.display()
        )
    });
    let (golden_header, golden_state) =
        ibsim_state::decode(&golden_text).expect("committed golden checkpoint decodes");
    assert_eq!(golden_header, header, "quick golden header drifted");
    let diffs = diff_values(&golden_state, &net.checkpoint().to_value(), 25);
    assert!(
        diffs.is_empty(),
        "quick-preset state at 3 ms drifted from the golden checkpoint:\n{}",
        ibsim_state::render_diff(&diffs)
    );
}

/// The committed quick golden, reproduced by *genuinely sharded* runs:
/// the quick cell has no telemetry and no faults, so nothing forces the
/// serial fallback and every shard count must land on the committed
/// bytes through the full split/window/merge machinery.
#[test]
#[ignore = "simulates 3 ms on 72 nodes per shard count; run with --release -- --ignored"]
fn golden_quick_checkpoint_is_stable_under_shards() {
    let preset = Preset::Quick;
    let topo = preset.topology();
    let golden_text = std::fs::read_to_string(golden_path("quick_cc_on.ckpt.json"))
        .expect("committed quick golden exists (bless via the serial test)");
    let (golden_header, golden_state) =
        ibsim_state::decode(&golden_text).expect("committed golden checkpoint decodes");
    for n in [2, 4, 8] {
        let mut net = Network::new(&topo, preset.net_config());
        let roles = RoleSpec {
            num_nodes: topo.num_hcas,
            num_hotspots: preset.num_hotspots(),
            b_pct: 0,
            b_p: 0,
            c_pct_of_rest: 80,
        };
        let _sc = Scenario::install_opts(roles, &mut net, PAPER_MSG_BYTES, true);
        net.set_shards(&topo, n);
        assert!(net.shard_count() > 1, "quick cell must shard genuinely");
        net.run_until(Time::from_ms(3));
        let header = CheckpointHeader::new(
            net.now().as_ps(),
            net.events_processed(),
            ibsim::checkpoint::digest(&net),
        );
        assert_eq!(
            golden_header, header,
            "quick golden header drifted under --shards {n}"
        );
        let diffs = diff_values(&golden_state, &net.checkpoint().to_value(), 25);
        assert!(
            diffs.is_empty(),
            "{n}-shard quick-preset state at 3 ms drifted from the golden checkpoint:\n{}",
            ibsim_state::render_diff(&diffs)
        );
    }
}

// Unused-import guards for items only some cfg paths touch.
#[allow(unused)]
fn _digest_shape(d: TopoDigest) -> (u64, bool) {
    (d.hcas, d.cc)
}
#[allow(unused)]
const _MAGIC: &str = MAGIC;

// ---------------------------------------------------------------------
// Production-workload round trips: generator cursors in ClassState.
// ---------------------------------------------------------------------

/// Mirror of `ibsim::workload::SEGMENT` for the trace-feeding cadence.
const WL_SEG: u64 = 100 * ibsim_engine::time::PS_PER_US;

/// Build a fabric with a workload installed, exactly as the runner does.
fn workload_net(spec: &str, seed: u64) -> (Network, ibsim_traffic::Workload) {
    let topo = FatTreeSpec::TEST_8.build();
    let mut net = Network::new(&topo, NetConfig::paper().with_seed(seed));
    let spec = ibsim_traffic::WorkloadSpec::parse(spec).expect("valid workload spec");
    let wl = spec.install(&mut net).expect("workload install");
    (net, wl)
}

/// A scripted workload (event builder, collective) checkpoints and
/// resumes from any instant by restore alone: the script cursor rides
/// in `ClassState`, so the interrupted run rejoins the uninterrupted
/// one byte for byte.
fn assert_scripted_workload_roundtrip(spec: &str, ck_at: Time, horizon: Time) {
    let (mut straight, _) = workload_net(spec, 0x1B51_C0DE);
    straight.run_until(ck_at);
    let saved = straight.checkpoint();
    straight.run_until(horizon);
    let want = straight.checkpoint();

    let (mut resumed, _) = workload_net(spec, 0x1B51_C0DE);
    resumed.restore(&saved).expect("restore workload fabric");
    resumed.run_until(horizon);
    let got = resumed.checkpoint();
    if want != got {
        let diffs = diff_values(&want.to_value(), &got.to_value(), 10);
        panic!(
            "workload {spec:?} resumed from {ck_at:?} diverged:\n{}",
            ibsim_state::render_diff(&diffs)
        );
    }
}

/// Mid-shift: 150 µs is inside shift 3 of an event builder on 40 µs
/// slots — some fragments of the shift in flight, some not yet
/// released.
#[test]
fn workload_roundtrip_mid_event_builder_shift() {
    assert_scripted_workload_roundtrip(
        "eb:frag=4096,fanin=5,shifts=8,slot_us=40",
        Time::from_us(150),
        Time::from_us(600),
    );
}

/// Mid-phase: 45 µs is inside phase 1 of a recursive-doubling
/// all-reduce on 30 µs slots — partners mid-exchange.
#[test]
fn workload_roundtrip_mid_collective_phase() {
    assert_scripted_workload_roundtrip(
        "collective:algo=rd,bytes=16384,rounds=2,slot_us=30",
        Time::from_us(45),
        Time::from_us(500),
    );
    assert_scripted_workload_roundtrip(
        "collective:algo=ring,bytes=65536,rounds=1,slot_us=30",
        Time::from_us(45),
        Time::from_us(500),
    );
}

/// Run `net` through the fixed segment grid from boundary `from` to
/// `horizon`, feeding the trace one segment ahead; optionally split one
/// segment at `ck_at` and return the checkpoint taken there.
fn run_trace_segments(
    net: &mut Network,
    feeder: &mut ibsim_traffic::TraceFeeder,
    from: u64,
    horizon: u64,
    ck_at: Option<u64>,
) -> Option<NetworkState> {
    let mut saved = None;
    let mut s = from;
    while s < horizon {
        let next = (s + WL_SEG).min(horizon);
        feeder.feed_until(net, Time(next + WL_SEG)).expect("feed");
        if let Some(at) = ck_at {
            if s < at && at <= next && saved.is_none() {
                net.run_until(Time(at));
                saved = Some(net.checkpoint());
            }
        }
        net.run_until(Time(next));
        s = next;
    }
    saved
}

/// Mid-stream trace replay resumes exactly: the restored scripts carry
/// `fed` cursors, `skip_fed` fast-forwards a fresh reader past the
/// records the checkpoint already absorbed, and the re-entered segment
/// grid feeds the remainder on the same cadence — so the resumed run
/// rejoins the uninterrupted one byte for byte.
#[test]
fn workload_roundtrip_mid_trace_stream() {
    let topo = FatTreeSpec::TEST_8.build();
    let gen = ibsim_traffic::TraceGenSpec {
        nodes: topo.num_hcas as u32,
        flows: 20_000,
        bytes: 2048,
        mean_gap_ns: 100,
        pattern: ibsim_traffic::TracePattern::Uniform,
        seed: 0xC4A1,
    };
    let path = std::env::temp_dir().join("ibsim_ckpt_trace_roundtrip.ibtr");
    ibsim_traffic::flowtrace::synthesize_to(&gen, &path).unwrap();
    let spec = ibsim_traffic::WorkloadSpec::parse(&format!("trace:{}", path.display())).unwrap();

    let ck_at = 250 * ibsim_engine::time::PS_PER_US;
    let horizon = 600 * ibsim_engine::time::PS_PER_US;

    let mk = || {
        let mut net = Network::new(&topo, NetConfig::paper().with_seed(3));
        let wl = spec.install(&mut net).expect("install trace workload");
        (net, wl.feeder.expect("trace workload has a feeder"))
    };

    let (mut straight, mut feed_a) = mk();
    let saved = run_trace_segments(&mut straight, &mut feed_a, 0, horizon, Some(ck_at))
        .expect("checkpoint instant inside the run");
    let want = straight.checkpoint();

    let (mut resumed, mut feed_b) = mk();
    resumed.restore(&saved).expect("restore trace fabric");
    let fed: u64 = (0..feed_b.nodes())
        .map(|v| resumed.script_fed(v, 0))
        .sum();
    assert!(fed > 0, "250us into the stream, records must have been fed");
    feed_b.skip_fed(fed).expect("re-read to the resume cursor");
    // Re-enter at the boundary the capture segment started on; the
    // replayed boundary feed is a no-op thanks to `skip_fed`.
    let reenter = ck_at / WL_SEG * WL_SEG;
    run_trace_segments(&mut resumed, &mut feed_b, reenter, horizon, None);
    let got = resumed.checkpoint();
    if want != got {
        let diffs = diff_values(&want.to_value(), &got.to_value(), 10);
        panic!(
            "trace replay resumed mid-stream diverged:\n{}",
            ibsim_state::render_diff(&diffs)
        );
    }
}

/// Committed workload golden: an event builder caught mid-shift, script
/// cursors and all. Pins the `ClassState` script fields in the on-disk
/// schema — any drift in how scripts checkpoint fails here naming the
/// field (re-bless with `IBSIM_BLESS=1 cargo test`).
#[test]
fn golden_workload_checkpoint_is_stable() {
    let spec = "eb:frag=4096,fanin=5,shifts=8,slot_us=40";
    let (mut net, _) = workload_net(spec, 0x1B51_C0DE);
    net.run_until(Time::from_us(150));
    let header = CheckpointHeader::new(
        net.now().as_ps(),
        net.events_processed(),
        ibsim::checkpoint::digest(&net),
    );
    let (restore_into, _) = workload_net(spec, 0x1B51_C0DE);
    assert_matches_golden(
        "wl_eb_test8.ckpt.json",
        &header,
        &net.checkpoint(),
        restore_into,
    );
}
