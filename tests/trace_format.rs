//! Property tests for the IBTR flow-trace format: encode → decode is
//! the identity over arbitrary record sequences, every corruption mode
//! (truncation, foreign magic, trailing bytes, lying headers) fails
//! with a structured found-vs-expected error, and synthesis is pinned
//! byte-for-byte so the on-disk format can never drift silently.

use ibsim::prelude::*;
use ibsim_traffic::flowtrace::{self, FORMAT_VERSION, MAGIC};
use ibsim_traffic::{FlowRec, TraceError, TraceGenSpec, TracePattern, TraceReader, TraceWriter};
use proptest::prelude::*;

/// Header length: magic + version + nodes + records.
const HEADER: usize = 4 + 4 + 4 + 8;

/// Turn a proptest-drawn raw tuple stream into valid records: times
/// accumulate (sorted), nodes fold into range, self-flows are bumped.
fn mk_records(nodes: u32, raw: &[(u64, u32, u32, u32)]) -> Vec<FlowRec> {
    let mut t = 0u64;
    raw.iter()
        .map(|&(dt, s, d, bytes)| {
            t += dt;
            let src = s % nodes;
            let mut dst = d % nodes;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            FlowRec {
                t: Time(t),
                src,
                dst,
                bytes,
            }
        })
        .collect()
}

fn encode(nodes: u32, records: &[FlowRec]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf, nodes, records.len() as u64).unwrap();
    for &r in records {
        w.push(r).unwrap();
    }
    w.finish().unwrap();
    buf
}

fn decode_all(buf: &[u8]) -> Result<Vec<FlowRec>, TraceError> {
    let mut r = TraceReader::new(buf)?;
    let mut out = Vec::new();
    while let Some(rec) = r.next_record()? {
        out.push(rec);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any valid record sequence survives the encode → decode round
    /// trip exactly: same times, same endpoints, same sizes.
    #[test]
    fn roundtrip_is_identity(
        nodes in 2u32..200,
        raw in prop::collection::vec(
            (0u64..2_000_000, any::<u32>(), any::<u32>(), 1u32..5_000_000),
            0..300,
        ),
    ) {
        let records = mk_records(nodes, &raw);
        let buf = encode(nodes, &records);
        let got = decode_all(&buf).unwrap();
        prop_assert_eq!(got, records);
        // And the header survives too.
        let r = TraceReader::new(&buf[..]).unwrap();
        prop_assert_eq!(r.nodes(), nodes);
        prop_assert_eq!(r.records(), raw.len() as u64);
    }

    /// Cutting the stream anywhere strictly inside it fails loudly —
    /// inside the header as an i/o error, inside the records as
    /// `Truncated` naming the record that tore (the final varint byte
    /// of a record is the only cut that shifts blame to the *next*
    /// record, which the lying header then reports as truncated).
    #[test]
    fn any_truncation_is_detected(
        nodes in 2u32..50,
        raw in prop::collection::vec(
            (0u64..1_000_000, any::<u32>(), any::<u32>(), 1u32..1_000_000),
            1..100,
        ),
        frac in 0.0f64..1.0,
    ) {
        let records = mk_records(nodes, &raw);
        let buf = encode(nodes, &records);
        let cut = (buf.len() as f64 * frac) as usize; // always < len
        let err = decode_all(&buf[..cut]).expect_err("truncated trace accepted");
        match err {
            TraceError::Io(_) => prop_assert!(cut < HEADER, "i/o error past the header at cut {cut}"),
            TraceError::Truncated { expected, .. } => {
                prop_assert!(cut >= HEADER);
                prop_assert_eq!(expected, records.len() as u64);
            }
            other => prop_assert!(false, "unexpected error for cut {}: {:?}", cut, other),
        }
    }

    /// Any corruption of the magic is named back to the caller with the
    /// bytes actually found.
    #[test]
    fn corrupt_magic_is_named(byte in 0usize..4, val in any::<u8>()) {
        let mut buf = encode(4, &mk_records(4, &[(10, 0, 1, 64)]));
        prop_assume!(buf[byte] != val);
        buf[byte] = val;
        match decode_all(&buf).expect_err("foreign magic accepted") {
            TraceError::BadMagic { found } => prop_assert_eq!(&found[..], &buf[..4]),
            other => prop_assert!(false, "unexpected error: {:?}", other),
        }
    }

    /// Bytes after the last declared record are rot, not slack.
    #[test]
    fn trailing_bytes_are_rejected(extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut buf = encode(4, &mk_records(4, &[(10, 0, 1, 64), (5, 2, 3, 128)]));
        buf.extend_from_slice(&extra);
        match decode_all(&buf).expect_err("trailing bytes accepted") {
            TraceError::TrailingData { expected } => prop_assert_eq!(expected, 2),
            other => prop_assert!(false, "unexpected error: {:?}", other),
        }
    }
}

/// A version from the future is refused with both numbers in hand.
#[test]
fn future_version_is_refused() {
    let mut buf = encode(4, &mk_records(4, &[(10, 0, 1, 64)]));
    buf[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match decode_all(&buf).expect_err("future version accepted") {
        TraceError::BadVersion { found, expected } => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

/// A header declaring more records than the stream carries reads as a
/// truncated copy — the reader trusts bytes, not declarations.
#[test]
fn lying_record_count_reads_as_truncation() {
    let mut buf = encode(4, &mk_records(4, &[(10, 0, 1, 64)]));
    buf[12..20].copy_from_slice(&2u64.to_le_bytes());
    match decode_all(&buf).expect_err("lying header accepted") {
        TraceError::Truncated { record, expected } => {
            assert_eq!(record, 1);
            assert_eq!(expected, 2);
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

/// FNV-1a over a byte stream — a stable pin that cannot drift with
/// rustc's hasher internals.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Synthesis determinism, twice over: the same spec produces identical
/// bytes on repeated runs, and a fixed spec's digest is pinned so any
/// change to the record layout, the varint coding, or the synthesis
/// RNG stream fails here first (bump the pin only with a deliberate
/// `FORMAT_VERSION` change).
#[test]
fn synthesis_is_pinned_byte_for_byte() {
    let spec = TraceGenSpec {
        nodes: 16,
        flows: 4_000,
        bytes: 2048,
        mean_gap_ns: 200,
        pattern: TracePattern::Hotspot {
            hotspots: 2,
            pct: 25,
        },
        seed: 0x7AACE,
    };
    let mut a = Vec::new();
    flowtrace::synthesize(&spec, &mut a).unwrap();
    let mut b = Vec::new();
    flowtrace::synthesize(&spec, &mut b).unwrap();
    assert_eq!(a, b, "synthesis is not deterministic");
    assert_eq!(
        fnv1a(&a),
        0xab22_1298_ecaf_d270,
        "IBTR byte stream drifted: record layout, varint coding, or the \
         synthesis RNG changed without a FORMAT_VERSION bump"
    );
}

/// The compactness claim the module documents: delta-encoded varints
/// keep a realistic record under 10 bytes.
#[test]
fn records_stay_compact() {
    let spec = TraceGenSpec::uniform_load(64, 10_000, 4096, 13.5, 60);
    let mut buf = Vec::new();
    flowtrace::synthesize(&spec, &mut buf).unwrap();
    let per_record = (buf.len() - HEADER) as f64 / spec.flows as f64;
    assert!(
        per_record < 10.0,
        "{per_record:.1} bytes per record — the delta coding regressed"
    );
    assert_eq!(buf[..4], MAGIC);
}
