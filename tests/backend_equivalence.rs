//! The congestion-control backend differential layer.
//!
//! The `CongestionControl` refactor moved the IB CC machinery behind
//! `ibsim_cc::SourceCc` and added a process-wide backend selector
//! (`ibsim::backend`). These tests prove the refactor is invisible:
//! `--cc-backend ibcc` — and the flag's absence — reproduce the
//! pre-refactor byte streams exactly (the same literal CSV pin
//! `tests/determinism.rs` guards), across seeds, fabrics, fault
//! schedules and shard counts. The DCQCN half then runs the paper's
//! scenario ladder under the new backend with the invariant oracle
//! armed: `run_scenario_faults` ends every run with
//! `audit_checked().raise()`, so a single unsanctioned violation —
//! including `PauseLosslessness` — panics the test.
//!
//! The backend selector is process-global; every test that touches a
//! toggle holds [`TOGGLES`] for its whole body.

use ibsim::prelude::*;
use ibsim_cc::CcBackend;
use proptest::prelude::*;
use std::sync::Mutex;

/// One test at a time may own the process-wide toggles.
static TOGGLES: Mutex<()> = Mutex::new(());

fn tiny_roles(topo: &Topology) -> RoleSpec {
    RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    }
}

fn tiny_dur() -> RunDurations {
    RunDurations {
        warmup: TimeDelta::from_us(200),
        measure: TimeDelta::from_us(500),
    }
}

/// The `table2` CSV exactly as `tests/determinism.rs` builds it.
fn table2_csv(topo: &Topology, cfg: &NetConfig, roles: RoleSpec, dur: RunDurations) -> String {
    let f3 = |x: f64| format!("{x:.3}");
    let cells = [(false, false), (true, false), (false, true), (true, true)];
    let results: Vec<ScenarioResult> = cells
        .iter()
        .map(|&(cc, active)| {
            let mut c = cfg.clone();
            if !cc {
                c.cc = None;
            }
            run_scenario_opts(topo, c, roles, dur, None, active)
        })
        .collect();
    let (base_off, base_on, hs_off, hs_on) = (&results[0], &results[1], &results[2], &results[3]);
    let rows = [
        ("no_hotspots_no_cc_all", base_off.all_rx),
        ("no_hotspots_cc_all", base_on.all_rx),
        ("hotspots_no_cc_hotspot", hs_off.hotspot_rx),
        ("hotspots_no_cc_non_hotspot", hs_off.non_hotspot_rx),
        ("hotspots_cc_hotspot", hs_on.hotspot_rx),
        ("hotspots_cc_non_hotspot", hs_on.non_hotspot_rx),
        ("total_no_cc", hs_off.total_rx),
        ("total_cc", hs_on.total_rx),
    ];
    let mut out = String::from("metric,gbps\n");
    for (name, v) in rows {
        out.push_str(&format!("{name},{}\n", f3(v)));
    }
    out
}

/// The exact pre-refactor TEST_8 pin from `tests/determinism.rs`. Both
/// the bare runner and a forced `--cc-backend ibcc` must land on this
/// literal — comparing against the committed string (not merely
/// against each other) rules out the backend split shifting *both*
/// paths in lockstep.
const TINY_TABLE2_PIN: &str = "metric,gbps\n\
    no_hotspots_no_cc_all,3.383\n\
    no_hotspots_cc_all,3.383\n\
    hotspots_no_cc_hotspot,13.600\n\
    hotspots_no_cc_non_hotspot,2.392\n\
    hotspots_cc_hotspot,6.424\n\
    hotspots_cc_non_hotspot,2.762\n\
    total_no_cc,30.346\n\
    total_cc,25.760\n";

#[test]
fn forced_ibcc_and_flag_absence_reproduce_the_pre_refactor_pin() {
    let _guard = TOGGLES.lock().unwrap();
    let topo = FatTreeSpec::TEST_8.build();

    ibsim::backend::clear(); // flag omitted
    let bare = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());
    assert_eq!(
        bare, TINY_TABLE2_PIN,
        "the backend refactor shifted the default (flag-omitted) output"
    );

    ibsim::backend::force(CcBackend::IbCc);
    let forced = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());
    ibsim::backend::clear();
    assert_eq!(
        forced, TINY_TABLE2_PIN,
        "--cc-backend ibcc diverged from the pre-refactor pin"
    );
}

/// One scenario run summarised to a comparable byte string.
fn run_digest(
    topo: &Topology,
    roles: RoleSpec,
    seed: u64,
    faults: Option<&FaultSchedule>,
) -> String {
    let cfg = NetConfig::paper().with_seed(seed);
    let dur = RunDurations {
        warmup: TimeDelta::from_us(100),
        measure: TimeDelta::from_us(200),
    };
    let r = run_scenario_faults(topo, cfg, roles, dur, None, true, faults);
    serde_json::to_string(&r).expect("serialise result")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Differential pin over the whole configuration lattice: for any
    /// seed × fabric × fault schedule × shard count, the bare runner
    /// and a forced `--cc-backend ibcc` produce byte-identical run
    /// summaries.
    #[test]
    fn ibcc_backend_is_byte_identical_across_seeds_fabrics_faults_shards(
        seed in 0u64..1_000_000,
        big_fabric in any::<bool>(),
        with_faults in any::<bool>(),
        shard_pick in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shard_pick];
        let _guard = TOGGLES.lock().unwrap();
        let topo = if big_fabric {
            FatTreeSpec::TEST_8.build()
        } else {
            single_switch(6, 2)
        };
        let roles = tiny_roles(&topo);
        let schedule;
        let faults = if with_faults {
            schedule = FaultSchedule::from_spec("becnloss:link=hcas,p=0.5", seed)
                .expect("valid spec");
            Some(&schedule)
        } else {
            None
        };

        ibsim::shards::force(shards);
        ibsim::backend::clear();
        let bare = run_digest(&topo, roles, seed, faults);
        ibsim::backend::force(CcBackend::IbCc);
        let forced = run_digest(&topo, roles, seed, faults);
        ibsim::backend::clear();
        ibsim::shards::force(1);

        prop_assert_eq!(
            bare, forced,
            "seed={} fabric={} faults={} shards={}: --cc-backend ibcc \
             diverged from the flag-omitted run",
            seed, if big_fabric { "TEST_8" } else { "sw6" }, with_faults, shards
        );
    }
}

/// The DCQCN backend runs the paper's scenario ladder — silent, windy
/// and moving (stormy) hotspot forests — with the invariant oracle
/// armed. `run_scenario_faults` raises on any unsanctioned violation,
/// so this test passing means zero credit-ledger, packet-conservation
/// and `PauseLosslessness` violations under the new backend.
#[test]
fn dcqcn_runs_the_scenario_ladder_clean_under_audit() {
    let _guard = TOGGLES.lock().unwrap();
    let topo = FatTreeSpec::TEST_8.build();
    ibsim::backend::force(CcBackend::Dcqcn);
    ibsim::audit::force(true);

    // Silent forest (fixed hotspots) and the no-hotspot baseline.
    for active in [true, false] {
        let r = run_scenario_opts(
            &topo,
            NetConfig::paper(),
            tiny_roles(&topo),
            tiny_dur(),
            None,
            active,
        );
        assert!(r.total_rx > 0.0, "dcqcn run moved no traffic");
    }
    // Windy forest: a couple of B-node fractions.
    for p in [25, 75] {
        let roles = RoleSpec {
            num_nodes: topo.num_hcas,
            num_hotspots: 1,
            b_pct: 50,
            b_p: p,
            c_pct_of_rest: 80,
        };
        let r = run_scenario(&topo, NetConfig::paper(), roles, tiny_dur(), None);
        assert!(r.total_rx > 0.0);
    }
    // Stormy forest: hotspots move every 200 µs.
    let r = run_scenario(
        &topo,
        NetConfig::paper(),
        tiny_roles(&topo),
        tiny_dur(),
        Some(TimeDelta::from_us(200)),
    );
    assert!(r.total_rx > 0.0);

    ibsim::audit::force(false);
    ibsim::backend::force(CcBackend::IbCc);
    ibsim::backend::clear();
}

/// DCQCN under audit + faults (CNP-loss windows where the fault layer
/// drops BECNs today) and 4-shard execution: the run must stay clean,
/// and sharding must not change a byte of the summary.
#[test]
fn dcqcn_with_faults_and_shards_is_clean_and_shard_invariant() {
    let _guard = TOGGLES.lock().unwrap();
    let topo = FatTreeSpec::TEST_8.build();
    ibsim::backend::force(CcBackend::Dcqcn);
    ibsim::audit::force(true);
    let schedule =
        FaultSchedule::from_spec("becnloss:link=hcas,p=0.5", 0x1B51_C0DE).expect("valid spec");

    let run = || {
        let r = run_scenario_faults(
            &topo,
            NetConfig::paper(),
            tiny_roles(&topo),
            tiny_dur(),
            None,
            true,
            Some(&schedule),
        );
        serde_json::to_string(&r).expect("serialise result")
    };
    let serial = run();
    ibsim::shards::force(4);
    let sharded = run();
    ibsim::shards::force(1);

    assert_eq!(
        serial, sharded,
        "4-shard dcqcn run diverged from the serial engine"
    );

    ibsim::audit::force(false);
    ibsim::backend::clear();
}

/// The dcqcn backend must actually exercise its new machinery on the
/// congested tiny fabric — otherwise every ladder test above is
/// vacuously green. Checked directly on a `Network` built from the
/// dcqcn paper config.
#[test]
fn dcqcn_tiny_hotspot_run_generates_pause_frames_and_cnps() {
    // Default PFC thresholds (XOFF 160 of 256 ibuf blocks): high enough
    // that egress VoQs still cross the 16 KiB FECN threshold, low
    // enough that a saturated ingress pauses. An aggressive XOFF (e.g.
    // 48 blocks) suppresses marking entirely — PFC caps every ingress
    // below the detector threshold — which the metamorphic tests cover
    // from the other side.
    let topo = FatTreeSpec::TEST_8.build();
    let cfg = NetConfig::paper_dcqcn();
    let mut net = Network::new(&topo, cfg);
    let hot = vec![TrafficClass::new(100, DestPattern::Fixed(0), 4096)];
    for n in 1..topo.num_hcas as u32 {
        net.set_classes(n, hot.clone());
    }
    net.enable_audit(5_000);
    net.run_until(Time::from_us(600));
    let report = net.audit_now();
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        net.total_pfc_pauses() > 0,
        "a 7-into-1 hotspot at 48-block XOFF must pause at least once"
    );
    assert!(
        net.total_becns() > 0,
        "receiver CNPs must reach and be processed by the dcqcn senders"
    );
}
