//! Regression pins for whole-simulation determinism.
//!
//! The event queue, the RNG streams, and every hot-path data structure
//! are supposed to make same-seed runs bit-reproducible. These tests
//! pin the Table II CSV output at the default seed so any change that
//! perturbs event order — however subtly — fails loudly instead of
//! silently shifting published numbers.
//!
//! The quick-preset pin is `#[ignore]`d (it simulates 72 nodes for 6 ms
//! and wants a release build); CI runs it in the bench job via
//! `cargo test --release -q -- --ignored`.

use ibsim::prelude::*;

/// Build the exact CSV the `table2` binary writes (same cells, same
/// row labels, same 3-decimal formatting, same serialisation).
fn table2_csv(topo: &Topology, cfg: &NetConfig, roles: RoleSpec, dur: RunDurations) -> String {
    table2_csv_faults(topo, cfg, roles, dur, None)
}

/// As [`table2_csv`], threading a fault schedule into every cell — the
/// zero-fault byte-identity pin runs the same code path the fault
/// drills use.
fn table2_csv_faults(
    topo: &Topology,
    cfg: &NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    faults: Option<&FaultSchedule>,
) -> String {
    let f3 = |x: f64| format!("{x:.3}");
    // (cc, contributors_active) — the four cells of Table II.
    let cells = [(false, false), (true, false), (false, true), (true, true)];
    let results: Vec<ScenarioResult> = cells
        .iter()
        .map(|&(cc, active)| {
            let mut c = cfg.clone();
            if !cc {
                c.cc = None;
            }
            run_scenario_faults(topo, c, roles, dur, None, active, faults)
        })
        .collect();
    let (base_off, base_on, hs_off, hs_on) = (&results[0], &results[1], &results[2], &results[3]);
    let rows = [
        ("no_hotspots_no_cc_all", base_off.all_rx),
        ("no_hotspots_cc_all", base_on.all_rx),
        ("hotspots_no_cc_hotspot", hs_off.hotspot_rx),
        ("hotspots_no_cc_non_hotspot", hs_off.non_hotspot_rx),
        ("hotspots_cc_hotspot", hs_on.hotspot_rx),
        ("hotspots_cc_non_hotspot", hs_on.non_hotspot_rx),
        ("total_no_cc", hs_off.total_rx),
        ("total_cc", hs_on.total_rx),
    ];
    let mut out = String::from("metric,gbps\n");
    for (name, v) in rows {
        out.push_str(&format!("{name},{}\n", f3(v)));
    }
    out
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// TEST_8 cell at the default seed: small enough to run in debug on
/// every `cargo test`, pinned to the exact CSV text.
#[test]
fn tiny_table2_csv_is_pinned() {
    let topo = FatTreeSpec::TEST_8.build();
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let dur = RunDurations {
        warmup: TimeDelta::from_us(200),
        measure: TimeDelta::from_us(500),
    };
    let csv = table2_csv(&topo, &NetConfig::paper(), roles, dur);
    let expected = "metric,gbps\n\
        no_hotspots_no_cc_all,3.383\n\
        no_hotspots_cc_all,3.383\n\
        hotspots_no_cc_hotspot,13.600\n\
        hotspots_no_cc_non_hotspot,2.392\n\
        hotspots_cc_hotspot,6.424\n\
        hotspots_cc_non_hotspot,2.762\n\
        total_no_cc,30.346\n\
        total_cc,25.760\n";
    assert_eq!(
        csv, expected,
        "tiny table2 CSV drifted — a same-seed run no longer reproduces \
         the pinned event order (hash {:#018x})",
        fnv1a(csv.as_bytes())
    );
}

fn tiny_roles(topo: &Topology) -> RoleSpec {
    RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    }
}

fn tiny_dur() -> RunDurations {
    RunDurations {
        warmup: TimeDelta::from_us(200),
        measure: TimeDelta::from_us(500),
    }
}

/// A compiled *zero-fault* schedule must be invisible: the run through
/// the fault-aware entry point reproduces the pinned CSV byte for byte.
/// An empty spec installing anything at all — an extra event, a
/// different RNG draw — would shift the numbers and fail the exact
/// string compare against the same pin `tiny_table2_csv_is_pinned`
/// guards.
#[test]
fn zero_fault_schedule_is_byte_identical() {
    let topo = FatTreeSpec::TEST_8.build();
    let empty = FaultSchedule::from_spec("", 0x1B51_C0DE).expect("empty spec");
    assert!(empty.is_empty());
    let with = table2_csv_faults(
        &topo,
        &NetConfig::paper(),
        tiny_roles(&topo),
        tiny_dur(),
        Some(&empty),
    );
    let without = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());
    assert_eq!(with, without, "an empty schedule must be a true no-op");
}

/// Same seed + same fault schedule replays identically — the fault
/// RNG stream, window bookkeeping, and event interleaving are all
/// deterministic. A different fault seed must change *something* (the
/// BECN coin flips land differently).
#[test]
fn faulted_runs_replay_identically() {
    let topo = FatTreeSpec::TEST_8.build();
    let run = |seed: u64| {
        let schedule = FaultSchedule::from_spec(
            "becnloss:link=hcas,p=0.5;flap:link=hca:1,at=300us,dur=100us,factor=stall",
            seed,
        )
        .expect("valid spec");
        let r = run_scenario_faults(
            &topo,
            NetConfig::paper(),
            tiny_roles(&topo),
            tiny_dur(),
            None,
            true,
            Some(&schedule),
        );
        serde_json::to_string(&r).expect("serialise result")
    };
    assert_eq!(run(7), run(7), "same seed+schedule must be bit-identical");
    assert_ne!(run(7), run(8), "the fault seed must matter");
}

/// Telemetry is purely observational: sampling at a 100 µs cadence
/// through the same runner reproduces the pinned CSV byte for byte.
/// The sampler piggybacks on the event loop — no scheduled events, no
/// RNG draws — so turning it on must not shift a single number. (This
/// extends the pin `tiny_table2_csv_is_pinned` guards; the whole test
/// binary runs single-process, so forcing the process-wide toggle here
/// is safe: this is the only test in the file that touches it.)
#[test]
fn telemetry_on_is_byte_identical() {
    let topo = FatTreeSpec::TEST_8.build();
    let without = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());

    let dir = std::env::temp_dir().join(format!("ibsim_det_tel_{}", std::process::id()));
    ibsim::telemetry::set_out_dir(&dir);
    ibsim::telemetry::force(Some(TimeDelta::from_us(100)));
    let with = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());
    ibsim::telemetry::force(None);

    assert_eq!(
        with, without,
        "telemetry-on run diverged from the telemetry-off pin"
    );
    // And the runs did record: artifacts for all 4 cells landed.
    let n_csv = std::fs::read_dir(&dir)
        .expect("telemetry out dir exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("telemetry_")
        })
        .count();
    // Other tests in this binary may run while the toggle is held and
    // contribute artifacts of their own, so lower-bound rather than pin.
    assert!(n_csv >= 4, "one sample CSV per Table II cell, got {n_csv}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Flow tracing is purely observational: tracing every node's flow
/// toward node 0 through the same runner reproduces the pinned CSV
/// byte for byte. The trace hooks read state the dispatch already
/// computed — no scheduled events, no RNG draws, no reordering. (This
/// test owns the process-wide trace toggle; no other test in this
/// binary touches it.)
#[test]
fn trace_on_is_byte_identical() {
    let topo = FatTreeSpec::TEST_8.build();
    let without = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());

    let dir = std::env::temp_dir().join(format!("ibsim_det_trc_{}", std::process::id()));
    ibsim::trace::set_out_dir(&dir);
    ibsim::trace::force(Some(ibsim::trace::FlowSpec::Flows(
        (1..8).map(|n| (n, 0)).collect(),
    )));
    let with = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());
    ibsim::trace::force(None);

    assert_eq!(with, without, "trace-on run diverged from the traced-off pin");
    // The runs did record: a Perfetto export per Table II cell landed.
    let n_json = std::fs::read_dir(&dir)
        .expect("trace out dir exists")
        .filter(|e| {
            let name = e.as_ref().unwrap().file_name();
            let name = name.to_string_lossy();
            name.starts_with("trace_") && name.ends_with(".json")
        })
        .count();
    assert!(n_json >= 4, "one Perfetto doc per Table II cell, got {n_json}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The self-profiler is purely observational: it reads the monotonic
/// clock around work the engine already does, so a profiled run
/// reproduces the pinned CSV byte for byte. (This test owns the
/// process-wide profile toggle; no other test in this binary touches
/// it.)
#[test]
fn profile_on_is_byte_identical() {
    let topo = FatTreeSpec::TEST_8.build();
    let without = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());

    let dir = std::env::temp_dir().join(format!("ibsim_det_prof_{}", std::process::id()));
    ibsim::profile::set_out_dir(&dir);
    ibsim::profile::force(true);
    let with = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());
    ibsim::profile::force(false);

    assert_eq!(
        with, without,
        "profile-on run diverged from the profile-off pin"
    );
    let n_json = std::fs::read_dir(&dir)
        .expect("profile out dir exists")
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("profile_")
        })
        .count();
    assert!(n_json >= 4, "one breakdown per Table II cell, got {n_json}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The sharded executor reproduces the pinned CSV byte for byte at
/// every shard count — the same literal string `tiny_table2_csv_is_pinned`
/// guards, so any parallel-only drift in event order, RNG draws, or
/// formatting fails against the published numbers directly. (Forcing
/// the process-wide shard count is safe concurrently: sharding is
/// byte-invisible, so other tests in this binary see identical results
/// whichever toggle state they observe.)
#[test]
fn sharded_tiny_table2_csv_is_pinned() {
    let topo = FatTreeSpec::TEST_8.build();
    let expected = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());
    for n in [2, 4, 8, 1] {
        ibsim::shards::force(n);
        let csv = table2_csv(&topo, &NetConfig::paper(), tiny_roles(&topo), tiny_dur());
        assert_eq!(
            csv, expected,
            "--shards {n} shifted the tiny table2 CSV — the parallel \
             executor no longer replays the serial event stream"
        );
    }
}

/// The quick preset (QUICK_72, 2 ms + 4 ms) exactly as
/// `table2 --preset quick` runs it, pinned by FNV-1a hash.
#[test]
#[ignore = "simulates 24 ms of fabric time across 4 cells; run with --release -- --ignored"]
fn quick_preset_table2_csv_hash_is_pinned() {
    let preset = Preset::Quick;
    let topo = preset.topology();
    let cfg = preset.net_config();
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: preset.num_hotspots(),
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let csv = table2_csv(&topo, &cfg, roles, preset.durations());
    assert_eq!(
        fnv1a(csv.as_bytes()),
        0x9abd_45e6_1b8e_c195,
        "quick-preset table2 CSV drifted from the pinned hash; output:\n{csv}"
    );
}

/// The quick preset again, on 4 shards, against the *same* pinned hash
/// the serial test guards: a genuinely sharded 72-node run (no
/// telemetry, no faults — nothing forces the serial fallback) lands on
/// the published numbers bit for bit.
#[test]
#[ignore = "simulates 24 ms of fabric time across 4 cells; run with --release -- --ignored"]
fn quick_preset_table2_csv_hash_is_pinned_sharded() {
    let preset = Preset::Quick;
    let topo = preset.topology();
    let cfg = preset.net_config();
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: preset.num_hotspots(),
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    ibsim::shards::force(4);
    let csv = table2_csv(&topo, &cfg, roles, preset.durations());
    ibsim::shards::force(1);
    assert_eq!(
        fnv1a(csv.as_bytes()),
        0x9abd_45e6_1b8e_c195,
        "4-shard quick-preset table2 CSV diverged from the serial pin; output:\n{csv}"
    );
}
