//! Metamorphic tests: relations that must hold between *pairs* of runs.
//!
//! Each test runs the simulator twice under a transformation with a
//! known effect on the output — CC toggled below the congestion
//! threshold (no effect), node ids relabeled on a symmetric switch
//! (permuted per-node results, preserved aggregate), the measurement
//! window doubled (doubled counts). No oracle for the absolute numbers
//! is needed; the *relation* is the oracle. The fabric invariant audit
//! runs on every network involved, so each metamorphic pair is also a
//! conservation check.

use ibsim::prelude::*;

#[path = "common/warm.rs"]
mod warm;

/// Below the congestion threshold the CC mechanism must be inert:
/// nothing gets FECN-marked, so CC-on and CC-off runs deliver the
/// identical per-node packet sets — not just similar throughput.
#[test]
fn low_load_delivery_is_cc_invariant() {
    let run = |cc: bool| {
        let topo = single_switch(8, 6);
        let cfg = if cc {
            NetConfig::paper()
        } else {
            NetConfig::paper_no_cc()
        };
        let mut net = Network::new(&topo, cfg);
        net.enable_audit(20_000);
        // Three disjoint src->dst pairs at 30% load: no shared output,
        // no standing queue, no marks.
        for (src, dst) in [(0u32, 3u32), (1, 4), (2, 5)] {
            net.set_classes(
                src,
                vec![
                    TrafficClass::new(30, DestPattern::Fixed(dst), 4096).with_max_messages(40),
                ],
            );
        }
        net.run_to_idle(10_000_000);
        net.audit_now().raise();
        assert_eq!(net.total_fecn_marks(), 0, "low load must not mark");
        net.hcas
            .iter()
            .map(|h| (h.injected_packets, h.delivered_packets))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(false), run(true));
}

/// A single switch is symmetric: renaming the hotspot and its
/// contributors must permute the per-node results and leave the
/// aggregate unchanged (up to round-robin tie-order noise).
#[test]
fn relabeling_nodes_permutes_results_preserves_aggregate() {
    let run = |senders: [u32; 3], hot: u32| {
        let topo = single_switch(8, 6);
        let mut net = Network::new(&topo, NetConfig::paper());
        net.enable_audit(50_000);
        for &s in &senders {
            net.set_classes(
                s,
                vec![TrafficClass::new(100, DestPattern::Fixed(hot), 4096)],
            );
        }
        let key = format!("relabel-{}{}{}-{hot}", senders[0], senders[1], senders[2]);
        warm::warm_until(&mut net, &key, Time::from_ms(1));
        net.start_measurement();
        net.run_until(Time::from_ms(3));
        net.stop_measurement();
        net.audit_now().raise();
        (net.rx_gbps(hot), net.total_rx_gbps())
    };
    let (hot_a, total_a) = run([1, 2, 3], 0);
    let (hot_b, total_b) = run([2, 3, 4], 5);
    let close = |a: f64, b: f64| (a - b).abs() / a < 0.02;
    assert!(
        close(hot_a, hot_b),
        "hotspot rate not relabel-invariant: {hot_a} vs {hot_b}"
    );
    assert!(
        close(total_a, total_b),
        "aggregate not relabel-invariant: {total_a} vs {total_b}"
    );
}

/// Severing the CC feedback loop is the same as never closing it:
/// with BECN loss at p=1.0 on every HCA link, no CNP survives its last
/// hop, no source ever throttles, and the fabric must converge to the
/// CC-off throughput. The transformation (drop all feedback) has a
/// known equivalent configuration (CC off) — the relation is the
/// oracle; the audit confirms losslessness held while every CNP died.
#[test]
fn total_becn_loss_converges_to_cc_off_throughput() {
    let run = |cc: bool, kill_feedback: bool| {
        let topo = FatTreeSpec::TEST_8.build();
        let cfg = if cc {
            NetConfig::paper()
        } else {
            NetConfig::paper_no_cc()
        };
        let mut net = Network::new(&topo, cfg);
        net.enable_audit(50_000);
        if kill_feedback {
            net.install_faults(
                FaultSchedule::from_spec("becnloss:link=hcas,p=1.0", 3).expect("valid spec"),
            );
        }
        for n in 2..8u32 {
            net.set_classes(
                n,
                vec![TrafficClass::new(100, DestPattern::Fixed(0), 4096)],
            );
        }
        let key = format!("becnloss-cc{cc}-kill{kill_feedback}");
        warm::warm_until(&mut net, &key, Time::from_ms(1));
        net.start_measurement();
        net.run_until(Time::from_ms(3));
        net.stop_measurement();
        let report = net.audit_now();
        assert!(!report.has_unsanctioned(), "{}", report.render());
        if kill_feedback {
            assert_eq!(net.max_ccti(), 0, "no surviving BECN may throttle");
            assert!(net.sanctioned_becn_drops() > 0, "CNPs must have died");
        }
        (net.rx_gbps(0), net.total_rx_gbps())
    };
    let (hot_off, total_off) = run(false, false);
    let (hot_lost, total_lost) = run(true, true);
    let close = |a: f64, b: f64| (a - b).abs() / a < 0.05;
    assert!(
        close(hot_off, hot_lost),
        "hotspot rate must match CC off: {hot_off} vs {hot_lost}"
    );
    assert!(
        close(total_off, total_lost),
        "total throughput must match CC off: {total_off} vs {total_lost}"
    );
    // Sanity: CC with intact feedback lands elsewhere (the victims are
    // rescued, the aggregate shifts) — the relation above is not vacuous.
    let (_, total_cc) = run(true, false);
    assert!(
        (total_cc - total_off).abs() / total_off > 0.05,
        "CC on vs off must differ for the relation to mean anything: \
         {total_cc} vs {total_off}"
    );
}

/// The DCQCN analogue of the BECN-loss relation above: defanging both
/// of the backend's mechanisms — PFC thresholds hoisted beyond any
/// reachable occupancy, CNP generation disabled — must converge to the
/// CC-off fabric. The transformation (never pause, never notify) has a
/// known equivalent configuration (no CC at all); the relation is the
/// oracle, and the audit confirms losslessness held throughout.
#[test]
fn unreachable_pfc_and_no_cnps_converge_to_cc_off() {
    let run = |cfg: NetConfig| {
        let topo = FatTreeSpec::TEST_8.build();
        let mut net = Network::new(&topo, cfg);
        net.enable_audit(50_000);
        for n in 2..8u32 {
            net.set_classes(
                n,
                vec![TrafficClass::new(100, DestPattern::Fixed(0), 4096)],
            );
        }
        let key = format!(
            "pfc-meta-{}-x{}",
            net.cc_backend().name(),
            net.cfg.dcqcn.pfc_xoff_blocks
        );
        warm::warm_until(&mut net, &key, Time::from_ms(1));
        net.start_measurement();
        net.run_until(Time::from_ms(3));
        net.stop_measurement();
        net.audit_now().raise();
        (
            net.rx_gbps(0),
            net.total_rx_gbps(),
            net.total_pfc_pauses(),
            net.total_becns(),
        )
    };

    let (hot_off, total_off, _, _) = run(NetConfig::paper_no_cc());

    let mut defanged = NetConfig::paper_dcqcn();
    defanged.dcqcn.pfc_xoff_blocks = 1_000_000; // >> any input buffer
    defanged.dcqcn.pfc_xon_blocks = 999_999;
    defanged.dcqcn.cnp_enabled = false;
    let (hot_d, total_d, pauses_d, becns_d) = run(defanged);
    assert_eq!(pauses_d, 0, "an unreachable XOFF threshold must never pause");
    assert_eq!(becns_d, 0, "disabled CNP generation must notify nothing");

    let close = |a: f64, b: f64| (a - b).abs() / a < 0.05;
    assert!(
        close(hot_off, hot_d),
        "hotspot rate must match CC off: {hot_off} vs {hot_d}"
    );
    assert!(
        close(total_off, total_d),
        "total throughput must match CC off: {total_off} vs {total_d}"
    );

    // Sanity: the intact dcqcn backend does exercise its machinery on
    // this workload — the relation above is not vacuous.
    let (_, _, pauses_i, becns_i) = run(NetConfig::paper_dcqcn());
    assert!(
        pauses_i + becns_i > 0,
        "intact dcqcn must pause or notify on a 6-into-1 hotspot"
    );
}

/// In steady state, measuring twice as long delivers twice as much:
/// the delivered-count deltas over back-to-back equal windows must
/// double within tolerance.
#[test]
fn doubling_the_window_doubles_delivered_counts() {
    let topo = single_switch(8, 6);
    let mut net = Network::new(&topo, NetConfig::paper_no_cc());
    net.enable_audit(50_000);
    for s in 1..4u32 {
        net.set_classes(
            s,
            vec![TrafficClass::new(100, DestPattern::Fixed(0), 4096)],
        );
    }
    warm::warm_until(&mut net, "doubling-3to0", Time::from_ms(1)); // drain-limited steady state
    let d0 = net.total_delivered_packets();
    net.run_until(Time::from_ms(2));
    let d1 = net.total_delivered_packets();
    net.run_until(Time::from_ms(3));
    let d2 = net.total_delivered_packets();
    net.audit_now().raise();
    let one = (d1 - d0) as f64;
    let two = (d2 - d0) as f64;
    assert!(one > 0.0, "nothing delivered in the first window");
    let ratio = two / one;
    assert!(
        (1.9..=2.1).contains(&ratio),
        "doubling the window scaled deliveries by {ratio}, not ~2"
    );
}
