//! Oracle under fire: the invariant oracle stays armed while a fault
//! schedule degrades the fabric. Sanctioned BECN drops appear in the
//! audit report as bookkeeping (and only as bookkeeping); any *other*
//! ledger imbalance — here an injected credit leak — still fails the
//! run. These tests share one binary because they force the
//! process-wide audit switch on.

use ibsim::prelude::*;
use ibsim_check::LedgerKind;
use ibsim_traffic::{RoleSpec, Scenario};

fn windy_roles(topo: &Topology) -> RoleSpec {
    RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 50,
        b_p: 50,
        c_pct_of_rest: 80,
    }
}

/// A windy run with BECN loss plus one link flap, audited end to end:
/// the report is clean except for SanctionedDrop entries, and those
/// entries account for exactly the CNPs the schedule swallowed.
#[test]
fn windy_run_under_faults_audits_clean_except_sanctioned() {
    ibsim::audit::force(true);
    let topo = FatTreeSpec::TEST_8.build();
    let schedule = FaultSchedule::from_spec(
        "becnloss:link=hcas,p=0.5;flap:link=hca:2,at=300us,dur=150us,factor=stall",
        11,
    )
    .expect("valid spec");
    let dur = RunDurations {
        warmup: TimeDelta::from_us(200),
        measure: TimeDelta::from_us(800),
    };
    let (report, audit) = ibsim::run_drill(
        &topo,
        NetConfig::paper(),
        windy_roles(&topo),
        dur,
        TimeDelta::from_us(100),
        &schedule,
    );
    assert!(
        !audit.has_unsanctioned(),
        "faults are sanctioned; the ledgers must still balance:\n{}",
        audit.render()
    );
    let dropped = report.fault_stats.becn_dropped;
    assert!(dropped > 0, "a 50% BECN-loss window must drop something");
    assert_eq!(
        audit.sanctioned_drops, dropped,
        "the report's sanctioned total must equal the injected count"
    );
    let ledgered: u64 = audit
        .violations
        .iter()
        .filter(|v| v.ledger == LedgerKind::SanctionedDrop)
        .map(|v| v.actual.parse::<u64>().expect("numeric actual"))
        .sum();
    assert_eq!(ledgered, dropped);
    assert!(
        audit
            .violations
            .iter()
            .all(|v| v.ledger == LedgerKind::SanctionedDrop),
        "nothing but sanctioned entries expected:\n{}",
        audit.render()
    );
}

/// The production workload ladder under a fully armed oracle on the
/// 3-level 54-node Clos: incast and event-builder shifts stress exactly
/// the paths the audit ledgers watch (VoQ conservation at the fan-in
/// port, credit balance across three switch tiers), and both must come
/// back with *zero* violations — not even sanctioned ones, since no
/// fault schedule runs.
#[test]
fn workload_ladder_audits_clean_on_fattree3() {
    ibsim::audit::force(true);
    let topo = FatTree3Spec::QUICK_54.build();
    let fanin = 8;
    for spec in [
        format!("incast:dst=0,fanin={fanin},bytes=16384,msgs=8,stagger_ns=500"),
        format!("eb:frag=4096,fanin={fanin},shifts=4,slot_us=40"),
    ] {
        let spec = ibsim_traffic::WorkloadSpec::parse(&spec).unwrap();
        let mut net = Network::new(&topo, NetConfig::paper());
        ibsim::audit::arm(&mut net);
        let wl = spec.install(&mut net).expect("workload install");
        assert!(wl.offered_bytes > 0);
        net.run_until(Time::from_us(400));
        let report = net.audit_now();
        assert!(
            report.violations.is_empty(),
            "workload {} dirtied the ledgers:\n{}",
            wl.spec,
            report.render()
        );
        assert!(
            net.total_fecn_marks() > 0,
            "an 8:1 fan-in must congest, or the audit watched an idle fabric"
        );
    }
}

/// Vacuity pin for the workload audits: the same incast on the same
/// fabric with one packet silently discarded from a switch queue *must*
/// trip the oracle — proving the clean reports above are earned, not
/// vacuous.
#[test]
fn workload_audit_catches_a_silent_drop() {
    ibsim::audit::force(true);
    let topo = FatTree3Spec::QUICK_54.build();
    let spec =
        ibsim_traffic::WorkloadSpec::parse("incast:dst=0,fanin=8,bytes=16384,msgs=8,stagger_ns=500")
            .unwrap();
    let mut net = Network::new(&topo, NetConfig::paper());
    ibsim::audit::arm(&mut net);
    spec.install(&mut net).expect("workload install");
    net.run_until(Time::from_us(100));
    // Discard the head packet of the first occupied switch queue —
    // unledgered loss on a lossless fabric.
    let dropped = (0..topo.switches.len())
        .find_map(|sw| (0..8).find_map(|p| net.drop_queued_for_test(sw, p)));
    assert!(
        dropped.is_some(),
        "an incast at 100us must have packets queued somewhere"
    );
    net.run_until(Time::from_us(400));
    let report = net.audit_now();
    assert!(
        report.has_unsanctioned(),
        "a silent drop must trip the workload audit — otherwise the \
         clean ladder above proves nothing:\n{}",
        report.render()
    );
}

/// The same faulted fabric with an additional *unsanctioned* credit
/// leak: sanctioned bookkeeping must not blunt the oracle.
#[test]
fn unsanctioned_leak_trips_the_oracle_despite_faults() {
    ibsim::audit::force(true);
    let topo = FatTreeSpec::TEST_8.build();
    let mut net = Network::new(&topo, NetConfig::paper());
    ibsim::audit::arm(&mut net);
    net.install_faults(
        FaultSchedule::from_spec("becnloss:link=hcas,p=0.5", 11).expect("valid spec"),
    );
    let _sc = Scenario::install_opts(windy_roles(&topo), &mut net, PAPER_MSG_BYTES, true);
    net.run_until(Time::from_us(500));
    // Eat 2 credit blocks on a leaf switch uplink — corruption no fault
    // schedule sanctioned.
    net.switches[0].leak_credits_for_test(2, 0, 2);
    let report = net.audit_now();
    assert!(
        report.has_unsanctioned(),
        "the leak must still trip the oracle:\n{}",
        report.render()
    );
    assert!(
        report
            .unsanctioned()
            .any(|v| v.ledger == LedgerKind::Credits),
        "{}",
        report.render()
    );
}
