//! Differential pins for the sharded parallel executor.
//!
//! The contract under test is absolute: for every shard count, running
//! a fabric through `Network::set_shards(topo, n)` produces state
//! **byte-identical** to the serial engine at every `run_until`
//! boundary — same event order, same RNG draws, same fault bookkeeping,
//! same audit cadence, same queue keys. Equality is checked on the full
//! [`NetworkState`] tree, which is strictly stronger than comparing
//! end-of-run CSVs; on a mismatch the panic names the first diverging
//! field via `ibsim_state::diff_values`.
//!
//! Also here: the serial-fallback boundaries (single leaf group,
//! BECN-loss schedules), cross-shard packet-arena conservation (the
//! merge asserts every shard arena drains; `--features pool-paranoid`
//! keeps the double-free generation check in release builds), and a
//! 20-repetition same-seed run asserting thread-schedule jitter never
//! leaks into results.

use ibsim::prelude::*;
use ibsim_net::{records_csv, NetworkState, TelemetryConfig};
use ibsim_state::diff_values;
use proptest::prelude::*;
use serde::Serialize;

/// The non-BECN fault families: flap (credit stall), drift (rate
/// degradation), pause/resume. All shard cleanly — they are per-device
/// or consulted lazily by time — so none of them force serial.
const SHARDABLE_FAULTS: &str = "flap:link=hca:1,at=300us,dur=100us,factor=stall;\
     drift:hca=2,at=150us,ccti_timer=2;pause:hca=3,at=200us,dur=150us";

/// A configured fabric: fat tree, one hotspot, CC as requested,
/// optional fault schedule, optional audit. Deterministic: two calls
/// build identical nets.
fn loaded_net(topo: &Topology, seed: u64, cc: bool, faults: Option<&str>, audit: bool) -> Network {
    let mut cfg = NetConfig::paper().with_seed(seed);
    if !cc {
        cfg.cc = None;
    }
    let mut net = Network::new(topo, cfg);
    if audit {
        // Short cadence: several boundaries fall inside every window
        // sweep below, pinning the replayed `Audit::due` positions.
        net.enable_audit(10_000);
    }
    if let Some(spec) = faults {
        let schedule = FaultSchedule::from_spec(spec, seed).expect("valid fault spec");
        net.install_faults(schedule);
    }
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let _sc = Scenario::install_opts(roles, &mut net, PAPER_MSG_BYTES, true);
    net
}

/// Run to each capture instant in turn, checkpointing at every stop —
/// the multi-boundary trace one run contributes to the comparison.
fn trace(net: &mut Network, captures: &[Time]) -> Vec<NetworkState> {
    captures
        .iter()
        .map(|&t| {
            net.run_until(t);
            net.checkpoint()
        })
        .collect()
}

/// The core differential: a serial run and an `n`-shard run of the same
/// fabric hold byte-identical state at every capture instant.
fn assert_equivalent(
    topo: &Topology,
    seed: u64,
    cc: bool,
    faults: Option<&str>,
    audit: bool,
    n: usize,
    captures: &[Time],
) {
    let mut serial = loaded_net(topo, seed, cc, faults, audit);
    let want = trace(&mut serial, captures);

    let mut sharded = loaded_net(topo, seed, cc, faults, audit);
    sharded.set_shards(topo, n);
    let got = trace(&mut sharded, captures);

    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if w != g {
            let diffs = diff_values(&w.to_value(), &g.to_value(), 10);
            panic!(
                "shards={n} diverged from serial at capture {} of {} \
                 (t={:?}, seed={seed} cc={cc} faults={faults:?} audit={audit}):\n{}",
                i + 1,
                captures.len(),
                captures[i],
                ibsim_state::render_diff(&diffs)
            );
        }
    }
}

fn us(v: u64) -> Time {
    Time::from_us(v)
}

// ---------------------------------------------------------------------
// Deterministic sweeps: the cheap fabrics on every `cargo test`.
// ---------------------------------------------------------------------

/// TEST_8 across shard counts and CC modes, captured mid-warmup, at a
/// measurement-style boundary, and at the horizon.
#[test]
fn fat8_matches_serial_across_shard_counts() {
    let topo = FatTreeSpec::TEST_8.build();
    let captures = [us(150), us(350), us(500)];
    // The full {2,4,8} × {off,on} grid runs in the ignored release
    // sweep; the everyday matrix covers both CC modes and the extremes.
    for (n, cc) in [(2, false), (2, true), (8, false), (8, true)] {
        assert_equivalent(&topo, 0x1B51_C0DE, cc, None, false, n, &captures);
    }
}

/// Flap + drift schedules shard: per-shard fault-state clones replay
/// the same windows, and the merged statistics equal the serial count.
#[test]
fn fat8_with_faults_matches_serial() {
    let topo = FatTreeSpec::TEST_8.build();
    let captures = [us(250), us(500)];
    assert_equivalent(
        &topo,
        0x1B51_C0DE,
        true,
        Some(SHARDABLE_FAULTS),
        false,
        4,
        &captures,
    );
}

/// The invariant oracle's cadence and ledgers survive sharding: the
/// replay steps `Audit::due` event-exactly, and the checkpoint carries
/// the full `NetAuditState` into the comparison.
#[test]
fn fat8_with_audit_matches_serial() {
    let topo = FatTreeSpec::TEST_8.build();
    let captures = [us(200), us(500)];
    assert_equivalent(&topo, 0x1B51_C0DE, true, None, true, 2, &captures);
    assert_equivalent(
        &topo,
        0x1B51_C0DE,
        true,
        Some(SHARDABLE_FAULTS),
        true,
        4,
        &captures,
    );
}

/// The DCQCN/PFC backend shards: pause frames and CNPs are ordinary
/// timestamped events, so they cross shard boundaries through the same
/// hand-off queues as data packets. This run shards *genuinely* (no
/// BECN-loss schedule forcing the serial fallback) and must land on the
/// serial engine's bytes at every capture — rate machines, pause state
/// and all.
#[test]
fn fat8_dcqcn_matches_serial_across_shard_counts() {
    let topo = FatTreeSpec::TEST_8.build();
    let captures = [us(150), us(350), us(500)];
    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: 1,
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let mk = || {
        let mut net = Network::new(&topo, NetConfig::paper_dcqcn().with_seed(0x1B51_C0DE));
        net.enable_audit(10_000);
        let _sc = Scenario::install_opts(roles, &mut net, PAPER_MSG_BYTES, true);
        net
    };
    let mut serial = mk();
    let want = trace(&mut serial, &captures);
    for n in [2, 4, 8] {
        let mut sharded = mk();
        sharded.set_shards(&topo, n);
        assert!(
            sharded.shard_count() > 1,
            "the dcqcn case must shard genuinely, not fall back to serial"
        );
        let got = trace(&mut sharded, &captures);
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            if w != g {
                let diffs = diff_values(&w.to_value(), &g.to_value(), 10);
                panic!(
                    "dcqcn shards={n} diverged from serial at capture {} of {}:\n{}",
                    i + 1,
                    captures.len(),
                    ibsim_state::render_diff(&diffs)
                );
            }
        }
    }
    assert!(
        serial.total_pfc_pauses() > 0,
        "the hotspot must pause at least once or the run proves nothing"
    );
}

/// The 72-node quick fabric: multi-stage routes cross shard boundaries
/// both leaf→spine and spine→leaf.
#[test]
#[ignore = "simulates a 72-node fabric 4×; run with --release -- --ignored"]
fn fat72_matches_serial() {
    let topo = FatTreeSpec::QUICK_72.build();
    let captures = [us(80), us(200)];
    for n in [2, 4] {
        assert_equivalent(&topo, 0x1B51_C0DE, true, None, false, n, &captures);
    }
}

// ---------------------------------------------------------------------
// Serial-fallback boundaries.
// ---------------------------------------------------------------------

/// One switch = one leaf group: nothing to cut, the executor declines
/// and the run is the serial engine verbatim.
#[test]
fn single_switch_declines_to_shard() {
    let topo = single_switch(8, 2);
    let mut net = loaded_net(&topo, 3, true, None, false);
    net.set_shards(&topo, 4);
    assert_eq!(net.shard_count(), 1);
}

/// BECN-loss windows draw from one shared RNG stream in global
/// CNP-arrival order; the executor declines rather than approximate.
/// (The run still works — serially.)
#[test]
fn becn_loss_schedule_declines_to_shard() {
    let topo = FatTreeSpec::TEST_8.build();
    let spec = "becnloss:link=hcas,p=0.5";
    let mut net = loaded_net(&topo, 3, true, Some(spec), false);
    net.set_shards(&topo, 4);
    assert_eq!(net.shard_count(), 1);

    // And an equivalence run through the public path is trivially exact.
    assert_equivalent(&topo, 3, true, Some(spec), false, 4, &[us(400)]);
}

/// `set_shards` with n=1 (or on an already-serial net) is a no-op.
#[test]
fn one_shard_is_serial() {
    let topo = FatTreeSpec::TEST_8.build();
    let mut net = loaded_net(&topo, 3, true, None, false);
    net.set_shards(&topo, 1);
    assert_eq!(net.shard_count(), 1);
    assert_equivalent(&topo, 3, true, None, false, 1, &[us(300)]);
}

// ---------------------------------------------------------------------
// Observability byte-identity: telemetry, flight window, trace records.
// ---------------------------------------------------------------------

/// Build the fully-instrumented fabric: audit (so `AuditPass` flight
/// notes land at every cadence crossing), telemetry in deterministic-
/// wall mode (the two wall-clock self-metrics are zeroed; every other
/// column is a pure function of simulated history), every HCA pair
/// traced, and the self-profiler on (strictly observational — it must
/// not perturb a single byte).
fn observed_net(topo: &Topology, n: usize) -> Network {
    let mut net = loaded_net(topo, 0x1B51_C0DE, true, None, true);
    let mut cfg = TelemetryConfig::every(TimeDelta::from_us(50));
    cfg.deterministic_wall = true;
    net.enable_telemetry(cfg);
    let hcas = topo.num_hcas as u32;
    net.enable_trace((0..hcas).flat_map(|s| (0..hcas).map(move |d| (s, d))));
    net.enable_profile();
    if n > 1 {
        net.set_shards(topo, n);
        assert!(
            net.shard_count() > 1,
            "the observed run must shard genuinely — the serial \
             fallback for telemetry/tracing is supposed to be gone"
        );
    }
    net
}

/// The three observation streams a run exposes, serialised.
fn observations(net: &Network) -> (String, String, String) {
    let tel = net.telemetry().expect("telemetry is on");
    (
        tel.table().to_csv(),
        net.flight_dump_json("obs equivalence pin").unwrap(),
        records_csv(net.tracer().expect("tracing is on").records()),
    )
}

/// The headline pin of this PR: with telemetry + tracing + audit +
/// profiling all on, the sharded executor reproduces the serial
/// engine's *observation* streams byte for byte at every capture
/// instant and every shard count — sample rows in the same order with
/// the same values, flight events (including replayed shard-side notes
/// and synthesised `AuditPass` entries) identical, trace records in
/// the exact serial capture order. Fabric state is compared too, so
/// observation work cannot have perturbed the simulation.
#[test]
fn observation_streams_match_serial_across_shard_counts() {
    let topo = FatTreeSpec::TEST_8.build();
    let captures = [us(150), us(350), us(500)];

    let mut serial = observed_net(&topo, 1);
    let want: Vec<_> = captures
        .iter()
        .map(|&t| {
            serial.run_until(t);
            (observations(&serial), serial.checkpoint())
        })
        .collect();
    // The pin must bite: telemetry sampled rows, the audit cadence
    // produced flight events, and the tracer saw the congestion tree.
    let (tel, flight, trace) = &want.last().unwrap().0;
    assert!(tel.lines().count() > 3, "several sample rows recorded");
    assert!(flight.contains("AuditPass"), "audit passes were noted");
    assert!(trace.lines().count() > 100, "the hotspot flows traced");

    for n in [2, 4, 8] {
        let mut net = observed_net(&topo, n);
        for (i, &t) in captures.iter().enumerate() {
            net.run_until(t);
            let (tel, flight, trace) = observations(&net);
            let ((wtel, wflight, wtrace), wstate) = &want[i];
            assert_eq!(
                &tel, wtel,
                "shards={n} telemetry CSV diverged from serial at t={t:?}"
            );
            assert_eq!(
                &flight, wflight,
                "shards={n} flight window diverged from serial at t={t:?}"
            );
            assert_eq!(
                &trace, wtrace,
                "shards={n} trace records diverged from serial at t={t:?}"
            );
            let state = net.checkpoint();
            if &state != wstate {
                let diffs = diff_values(&wstate.to_value(), &state.to_value(), 10);
                panic!(
                    "shards={n} observation work perturbed fabric state \
                     at t={t:?} (capture {} of {}):\n{}",
                    i + 1,
                    captures.len(),
                    ibsim_state::render_diff(&diffs)
                );
            }
        }
    }
}

/// The self-profiler under sharding: per-shard bins fold into the
/// master at merge, so a sharded profiled run still accounts events to
/// subsystems (and the barrier bin is populated — only the coordinator
/// records it).
#[test]
fn sharded_profile_report_accounts_subsystems() {
    let topo = FatTreeSpec::TEST_8.build();
    let mut net = observed_net(&topo, 4);
    net.run_until(us(400));
    let report = net.profile_report().expect("profiling is on");
    assert!(report.events > 0);
    let bin = |name: &str| {
        report
            .bins
            .iter()
            .find(|b| b.subsystem == name)
            .unwrap_or_else(|| panic!("report has a {name} bin"))
            .calls
    };
    assert!(bin("queue_pop") > 0, "shard-side pops fold into the master");
    assert!(bin("barrier") > 0, "the coordinator times its barriers");
}

// ---------------------------------------------------------------------
// Thread-schedule jitter: same seed, many repetitions, one answer.
// ---------------------------------------------------------------------

/// 20 repetitions of the same 4-shard run produce 20 byte-identical
/// checkpoints: OS scheduling, barrier arrival order, and work
/// imbalance never reach an observable.
#[test]
#[ignore = "20 repetitions of a 500 µs run; run with --release -- --ignored"]
fn same_seed_runs_are_jitter_free() {
    let topo = FatTreeSpec::TEST_8.build();
    let reference = {
        let mut net = loaded_net(&topo, 0xD15C, true, Some(SHARDABLE_FAULTS), false);
        net.set_shards(&topo, 4);
        net.run_until(us(500));
        serde_json::to_string(&net.checkpoint()).expect("serialise")
    };
    for rep in 0..19 {
        let mut net = loaded_net(&topo, 0xD15C, true, Some(SHARDABLE_FAULTS), false);
        net.set_shards(&topo, 4);
        net.run_until(us(500));
        let got = serde_json::to_string(&net.checkpoint()).expect("serialise");
        assert_eq!(
            got, reference,
            "repetition {} of the same seeded run diverged — thread \
             scheduling leaked into simulation state",
            rep + 2
        );
    }
}

// ---------------------------------------------------------------------
// Property sweep: seeds × fabric × CC × faults × shard count.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed, either fabric, either CC mode, any shardable fault
    /// schedule, any shard count, two capture instants: parallel equals
    /// serial, byte for byte.
    #[test]
    #[ignore = "16 full runs incl. the 72-node fabric; run with --release -- --ignored"]
    fn sharded_equals_serial_everywhere(
        seed in 0u64..1_000,
        big in proptest::bool::ANY,
        cc in proptest::bool::ANY,
        faulted in proptest::bool::ANY,
        n in 2usize..=8,
        mid_us in 50u64..=300,
    ) {
        let topo = if big {
            FatTreeSpec::QUICK_72.build()
        } else {
            FatTreeSpec::TEST_8.build()
        };
        let horizon = if big { 320 } else { 600 };
        let faults = if faulted { Some(SHARDABLE_FAULTS) } else { None };
        assert_equivalent(&topo, seed, cc, faults, false, n,
                          &[us(mid_us), us(horizon)]);
    }
}

// ---------------------------------------------------------------------
// Cross-shard hand-off conservation.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Packets handed across shards are neither leaked nor double-freed:
    /// the merge asserts every shard arena drains to zero live slots
    /// (and under `--features pool-paranoid` each release re-validates
    /// its generation), while the master checkpoint — which resolves
    /// every surviving handle — must still equal serial. Many windows
    /// (short horizon steps) maximise hand-off traffic.
    #[test]
    fn cross_shard_handoff_conserves_packets(
        seed in 0u64..500,
        n in 2usize..=6,
    ) {
        let topo = FatTreeSpec::TEST_8.build();
        // Stepping in small increments forces a fresh split/merge cycle
        // per step — each one a full conservation audit.
        let captures: Vec<Time> = (1..=5).map(|k| us(100 * k)).collect();
        assert_equivalent(&topo, seed, true, None, false, n, &captures);
    }
}
