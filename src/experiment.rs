//! One-call experiment runners: build a network, install a scenario,
//! warm up, measure, and summarise — the common skeleton of every
//! table and figure in the paper.

use ibsim_engine::time::{Time, TimeDelta};
use ibsim_net::{FaultSchedule, NetConfig, Network};
use ibsim_topo::Topology;
use ibsim_traffic::{RoleSpec, Scenario};
use serde::Serialize;

/// Warmup and measurement durations of one run.
#[derive(Clone, Copy, Debug)]
pub struct RunDurations {
    /// Simulated time excluded from measurement (congestion trees and
    /// CCTI state form during this window).
    pub warmup: TimeDelta,
    /// Simulated time measured.
    pub measure: TimeDelta,
}

impl RunDurations {
    pub fn new_ms(warmup_ms: u64, measure_ms: u64) -> Self {
        RunDurations {
            warmup: TimeDelta::from_ms(warmup_ms),
            measure: TimeDelta::from_ms(measure_ms),
        }
    }
    pub fn total(&self) -> TimeDelta {
        self.warmup + self.measure
    }
}

/// Everything a single simulation run reports.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioResult {
    /// Was congestion control enabled?
    pub cc: bool,
    /// Average receive rate of the hotspot nodes (Gbit/s). For
    /// moving-hotspot runs this reflects the *final* hotspot set; the
    /// figures report `all_rx` for those scenarios, as the paper does.
    pub hotspot_rx: f64,
    /// Average receive rate of the non-hotspot nodes (Gbit/s).
    pub non_hotspot_rx: f64,
    /// Average receive rate over all nodes (Gbit/s).
    pub all_rx: f64,
    /// Sum of all nodes' receive rates (Gbit/s) — "total network
    /// throughput" in the paper's Table II.
    pub total_rx: f64,
    /// The paper's `tmax`: theoretical max non-hotspot receive rate.
    pub tmax: f64,
    /// FECN marks applied by switches during the whole run.
    pub fecn_marks: u64,
    /// BECNs processed by sources during the whole run.
    pub becns: u64,
    /// Highest CCTI at the end of the run.
    pub max_ccti: u16,
    /// Median end-to-end data latency in microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile end-to-end data latency in microseconds.
    pub latency_p99_us: f64,
    /// Jain's fairness index over contributor shares at the hotspots
    /// (None when nothing reached a hotspot in the window).
    pub fairness: Option<f64>,
    /// CNPs sanctioned-dropped by an installed fault schedule (0 when
    /// the run had no faults).
    pub sanctioned_becn_drops: u64,
    /// Events processed (simulator work, not a paper metric).
    pub events: u64,
}

/// Splits each `run_until` segment at the pending checkpoint time, if
/// one falls inside it: run to the capture instant, save, then finish
/// the segment. Capture therefore happens *before* boundary actions
/// (starting measurement, moving hotspots) at the same instant, and
/// the resume path re-executes those actions.
struct CkptHook {
    pending: Option<Time>,
    label: String,
}

impl CkptHook {
    fn new(label: String, resumed_at: Option<Time>) -> Self {
        let mut pending = crate::checkpoint::save_at();
        // A resumed run never re-saves a capture point it is at or
        // beyond — the file it came from already holds that state.
        if let (Some(at), Some(r)) = (pending, resumed_at) {
            if at <= r {
                pending = None;
            }
        }
        CkptHook { pending, label }
    }

    fn run_until(&mut self, net: &mut Network, to: Time) {
        if let Some(at) = self.pending {
            if at <= to {
                net.run_until(at);
                crate::checkpoint::save(net, &self.label);
                self.pending = None;
            }
        }
        net.run_until(to);
    }
}

/// Run one hotspot scenario. `hotspot_lifetime = None` keeps hotspots
/// fixed (silent/windy forests); `Some(L)` moves every hotspot each `L`
/// of simulated time (the stormy forests of §V-C), starting during
/// warmup so the measured window sees steady-state churn.
pub fn run_scenario(
    topo: &Topology,
    cfg: NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    hotspot_lifetime: Option<TimeDelta>,
) -> ScenarioResult {
    run_scenario_opts(topo, cfg, roles, dur, hotspot_lifetime, true)
}

/// As [`run_scenario`], optionally silencing contributor nodes (the
/// "no hotspots" baseline rows of Table II).
pub fn run_scenario_opts(
    topo: &Topology,
    cfg: NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    hotspot_lifetime: Option<TimeDelta>,
    contributors_active: bool,
) -> ScenarioResult {
    run_scenario_faults(
        topo,
        cfg,
        roles,
        dur,
        hotspot_lifetime,
        contributors_active,
        None,
    )
}

/// As [`run_scenario_opts`], with a fault schedule installed before the
/// first event. `None` (or an empty schedule) is bit-identical to the
/// plain runners. End-of-run audits tolerate sanctioned drops but still
/// fail on any unsanctioned ledger violation.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_faults(
    topo: &Topology,
    cfg: NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    hotspot_lifetime: Option<TimeDelta>,
    contributors_active: bool,
    faults: Option<&FaultSchedule>,
) -> ScenarioResult {
    let inj = cfg.inj_rate;
    let mut cfg = cfg;
    crate::backend::apply(&mut cfg);
    let mut net = Network::new(topo, cfg);
    crate::audit::arm(&mut net);
    crate::telemetry::arm(&mut net);
    crate::trace::arm(&mut net);
    crate::profile::arm(&mut net);
    if let Some(schedule) = faults {
        net.install_faults(schedule.clone());
    }
    crate::shards::arm(&mut net, topo);
    let mut sc = Scenario::install_opts(
        roles,
        &mut net,
        ibsim_net::PAPER_MSG_BYTES,
        contributors_active,
    );
    // `--trace-flows hotspots` resolves against the drawn assignment.
    crate::trace::arm_hotspots(&mut net, &sc.assignment.hotspots, topo.num_hcas);
    let t_end = Time::ZERO + dur.total();

    // Optional resume: fast-forward the freshly configured (but not yet
    // primed) fabric from this run's checkpoint, if one exists. Hotspot
    // moves the saved run performed before the capture are replayed
    // first — retargeting rewires class *configuration*, which the
    // checkpoint deliberately does not carry. The move scheduled at the
    // capture instant itself (if any) fired after the save, so it is
    // left to the resumed epoch loop below.
    let label = crate::checkpoint::run_label(
        &roles,
        &dur,
        hotspot_lifetime,
        contributors_active,
        faults,
    );
    let mut resumed_at = None;
    if let Some((at, state)) = crate::checkpoint::load_for(&net, &label) {
        if let Some(life) = hotspot_lifetime {
            let mut m = Time::ZERO + life;
            while m < at {
                sc.move_hotspots(&mut net);
                m += life;
            }
        }
        net.restore(&state)
            .unwrap_or_else(|e| panic!("checkpoint restore failed: {e}"));
        resumed_at = Some(at);
    }
    let mut ck = CkptHook::new(label, resumed_at);

    match hotspot_lifetime {
        None => {
            ck.run_until(&mut net, Time::ZERO + dur.warmup);
            if !net.is_measuring() {
                net.start_measurement();
            }
            ck.run_until(&mut net, t_end);
        }
        Some(life) => {
            assert!(!life.is_zero(), "hotspot lifetime must be positive");
            let mut t = Time::ZERO;
            if let Some(at) = resumed_at {
                // Re-enter the epoch loop at the last boundary strictly
                // before the capture, so a move scheduled exactly at the
                // capture instant still fires.
                while t + life < at {
                    t += life;
                }
            }
            let mut measuring = net.is_measuring();
            while t < t_end {
                let next_move = t + life;
                let warmup_end = Time::ZERO + dur.warmup;
                if !measuring && warmup_end <= next_move.min(t_end) {
                    ck.run_until(&mut net, warmup_end);
                    if !net.is_measuring() {
                        net.start_measurement();
                    }
                    measuring = true;
                }
                let stop = next_move.min(t_end);
                ck.run_until(&mut net, stop);
                t = stop;
                if t < t_end {
                    sc.move_hotspots(&mut net);
                }
            }
            if !measuring && !net.is_measuring() {
                net.start_measurement();
            }
        }
    }
    net.stop_measurement();
    // Drain telemetry to disk before the audit pass: if the ledger is
    // broken, the artifacts (and the violation-context flight dump the
    // checked pass writes) survive the ensuing panic.
    let cc_hint = if net.cc_enabled() { "cc_on" } else { "cc_off" };
    crate::telemetry::finish(&net, cc_hint, &sc.assignment.hotspots);
    crate::trace::finish(&net, cc_hint);
    crate::profile::finish(&net, cc_hint);
    // End-of-run invariant pass (no-op when auditing is off): a broken
    // ledger fails the run rather than reporting corrupt numbers.
    net.audit_checked().raise();

    let lat = net.latency_histogram();
    let to_us = |ps: Option<u64>| ps.map_or(0.0, |v| v as f64 / 1e6);
    ScenarioResult {
        cc: net.cc_enabled(),
        hotspot_rx: sc.hotspot_avg_rx(&net),
        non_hotspot_rx: sc.non_hotspot_avg_rx(&net),
        all_rx: sc.all_avg_rx(&net),
        total_rx: net.total_rx_gbps(),
        tmax: sc.tmax_gbps(inj),
        fecn_marks: net.total_fecn_marks(),
        becns: net.total_becns(),
        max_ccti: net.max_ccti(),
        latency_p50_us: to_us(lat.quantile(0.5)),
        latency_p99_us: to_us(lat.quantile(0.99)),
        fairness: sc.hotspot_fairness(&net),
        sanctioned_becn_drops: net.sanctioned_becn_drops(),
        events: net.events_processed(),
    }
}

/// A CC-on/CC-off pair of runs over the same workload (identical seeds
/// and therefore identical traffic), the unit of every comparison plot.
#[derive(Clone, Debug, Serialize)]
pub struct CcComparison {
    pub off: ScenarioResult,
    pub on: ScenarioResult,
}

impl CcComparison {
    /// Total-throughput improvement factor from enabling CC (the y-axis
    /// of figures 5(c)–8(c)).
    pub fn improvement(&self) -> f64 {
        if self.off.total_rx == 0.0 {
            return 1.0;
        }
        self.on.total_rx / self.off.total_rx
    }
}

/// Run the same scenario with CC off and on.
pub fn run_cc_pair(
    topo: &Topology,
    base_cfg: &NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    hotspot_lifetime: Option<TimeDelta>,
) -> CcComparison {
    run_cc_pair_faults(topo, base_cfg, roles, dur, hotspot_lifetime, None)
}

/// As [`run_cc_pair`], injecting the same fault schedule into both the
/// CC-off and CC-on runs (so the comparison isolates what CC buys — or
/// costs — under identical degradation).
pub fn run_cc_pair_faults(
    topo: &Topology,
    base_cfg: &NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    hotspot_lifetime: Option<TimeDelta>,
    faults: Option<&FaultSchedule>,
) -> CcComparison {
    let mut cfg_off = base_cfg.clone();
    cfg_off.cc = None;
    let mut cfg_on = base_cfg.clone();
    if cfg_on.cc.is_none() {
        cfg_on.cc = Some(ibsim_cc::CcParams::paper_table1());
    }
    CcComparison {
        off: run_scenario_faults(topo, cfg_off, roles, dur, hotspot_lifetime, true, faults),
        on: run_scenario_faults(topo, cfg_on, roles, dur, hotspot_lifetime, true, faults),
    }
}
