//! Process-wide toggle + sink for the fabric telemetry layer.
//!
//! The sampler and flight recorder live in `ibsim-telemetry` /
//! `ibsim_net::telemetry`; this module decides *whether* a run records
//! and *where* the artifacts land, so every experiment binary and
//! library entry point agrees on one switch (the same contract as
//! [`crate::audit`]):
//!
//! * `--telemetry[=EVERY_US]` on any experiment binary calls
//!   [`force`]`(Some(every))`;
//! * the `IBSIM_TELEMETRY` environment variable (`1`/`true`/`on`)
//!   turns it on for processes that never parse flags, with
//!   `IBSIM_TELEMETRY_EVERY` overriding the sampling period in
//!   microseconds (default 100);
//! * `IBSIM_TELEMETRY_OUT` (or [`set_out_dir`], which the binaries
//!   call with their `--out` directory) picks where
//!   `telemetry_{run}.csv` / `flight_{run}.json` / `figure_{run}.csv`
//!   are written.
//!
//! [`arm`] applies the decision to a freshly-built [`Network`];
//! [`finish`] drains the recorded series to disk at end of run. Each
//! run in the process gets a unique `runNNN` label, so parallel sweeps
//! never clobber each other's artifacts.

use ibsim_engine::time::TimeDelta;
use ibsim_net::{Network, TelemetryConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// 0 = follow the environment, `u64::MAX` = forced off, anything else =
/// forced on with that sampling period in picoseconds.
static FORCE_PS: AtomicU64 = AtomicU64::new(0);

/// Monotonic per-process run label counter (`run000`, `run001`, …).
static RUN_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Override the environment (last call wins; `--telemetry` uses this).
/// `Some(every)` forces sampling on at that period, `None` forces off.
pub fn force(every: Option<TimeDelta>) {
    let v = match every {
        Some(e) => {
            assert!(!e.is_zero(), "telemetry period must be positive");
            e.as_ps()
        }
        None => u64::MAX,
    };
    FORCE_PS.store(v, Ordering::Relaxed);
}

/// The default sampling period when only an on/off signal is given.
pub fn default_every() -> TimeDelta {
    TimeDelta::from_us(100)
}

/// Should runs record telemetry, and at what period? Forced value if
/// set, else `IBSIM_TELEMETRY` / `IBSIM_TELEMETRY_EVERY`.
pub fn enabled() -> Option<TimeDelta> {
    match FORCE_PS.load(Ordering::Relaxed) {
        0 => {
            static ENV: OnceLock<Option<u64>> = OnceLock::new();
            ENV.get_or_init(|| {
                let on = matches!(
                    std::env::var("IBSIM_TELEMETRY").as_deref(),
                    Ok("1") | Ok("true") | Ok("on")
                );
                if !on {
                    return None;
                }
                let every_us = std::env::var("IBSIM_TELEMETRY_EVERY")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .unwrap_or(100);
                Some(TimeDelta::from_us(every_us).as_ps())
            })
            .map(TimeDelta)
        }
        u64::MAX => None,
        ps => Some(TimeDelta(ps)),
    }
}

fn out_dir_override() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Direct telemetry artifacts to `dir` (binaries pass their `--out`).
pub fn set_out_dir(dir: impl Into<PathBuf>) {
    *out_dir_override().lock().unwrap() = Some(dir.into());
}

/// Where artifacts land: [`set_out_dir`] value, else
/// `IBSIM_TELEMETRY_OUT`, else `results`.
pub fn out_dir() -> PathBuf {
    if let Some(d) = out_dir_override().lock().unwrap().clone() {
        return d;
    }
    std::env::var("IBSIM_TELEMETRY_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Should samples zero the two wall-clock self-metrics
/// (`engine.events_per_sec`, `engine.wall_ms_per_sim_ms`)? On under
/// `IBSIM_TELEMETRY_DET` (`1`/`true`/`on`) — the mode the CI
/// observability leg diffs sharded CSVs against serial under, since
/// every other column is a pure function of simulated history.
pub fn deterministic_wall() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(
            std::env::var("IBSIM_TELEMETRY_DET").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        )
    })
}

/// Enable the sampler on `net` when telemetry is on. Call before the
/// first event is dispatched.
pub fn arm(net: &mut Network) {
    if let Some(every) = enabled() {
        let mut cfg = TelemetryConfig::every(every);
        cfg.deterministic_wall = deterministic_wall();
        net.enable_telemetry(cfg);
    }
}

/// Write one finished run's artifacts — `telemetry_{run}.csv` (the full
/// sample table), `flight_{run}.json` (the flight-recorder window +
/// current sample), `figure_{run}.csv` (the paper-figure layout from
/// [`crate::figures`]) — and return their paths. No-op (`None`) when
/// the network was not armed.
pub fn finish(net: &Network, hint: &str, hotspots: &[u32]) -> Option<Vec<PathBuf>> {
    let tel = net.telemetry()?;
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create telemetry out dir");
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let label = if hint.is_empty() {
        format!("run{seq:03}")
    } else {
        format!("run{seq:03}_{hint}")
    };

    let csv = dir.join(format!("telemetry_{label}.csv"));
    std::fs::write(&csv, tel.table().to_csv()).expect("write telemetry csv");

    let flight = dir.join(format!("flight_{label}.json"));
    let doc = net
        .flight_dump_json("end of run")
        .expect("telemetry is armed");
    std::fs::write(&flight, doc).expect("write flight json");

    let figure = dir.join(format!("figure_{label}.csv"));
    let series = crate::figures::FigureSeries::from_table(tel.table(), hotspots);
    std::fs::write(&figure, series.to_csv()).expect("write figure csv");

    Some(vec![csv, flight, figure])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibsim_net::{DestPattern, NetConfig, TrafficClass};
    use ibsim_topo::single_switch;

    #[test]
    fn force_wins_arms_networks_and_finish_writes_artifacts() {
        // One test owns the globals (force + out dir), mirroring the
        // audit toggle's test discipline.
        let dir = std::env::temp_dir().join(format!("ibsim_tel_{}", std::process::id()));
        set_out_dir(&dir);
        force(Some(TimeDelta::from_us(50)));
        assert_eq!(enabled(), Some(TimeDelta::from_us(50)));

        let topo = single_switch(8, 4);
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net);
        assert!(net.telemetry_enabled());
        for n in 1..4 {
            net.set_classes(n, vec![TrafficClass::new(100, DestPattern::Fixed(0), 4096)]);
        }
        net.run_until(ibsim_engine::time::Time::from_us(300));

        let paths = finish(&net, "cc_on", &[0]).expect("armed run writes artifacts");
        assert_eq!(paths.len(), 3);
        for p in &paths {
            let body = std::fs::read_to_string(p).unwrap();
            assert!(!body.is_empty(), "{} is empty", p.display());
        }
        let csv = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(csv.starts_with("t_us,"), "sample CSV header");
        assert_eq!(csv.lines().count(), 1 + 7, "300µs / 50µs + 1 samples");

        force(None);
        assert_eq!(enabled(), None);
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net);
        assert!(!net.telemetry_enabled());
        assert!(finish(&net, "off", &[]).is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
