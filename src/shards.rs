//! Process-wide toggle for the sharded parallel executor.
//!
//! The executor itself lives in `ibsim_net` (`Network::set_shards`);
//! this module decides *how many* shards a run uses, so that every
//! experiment binary and library entry point agrees on one switch:
//!
//! * `--shards N` on any experiment binary calls [`force`]`(N)`;
//! * the `IBSIM_SHARDS` environment variable sets the count for
//!   processes that never parse flags — the CI parallel leg sets it for
//!   the whole test suite.
//!
//! [`arm`] applies the decision to a freshly-built [`Network`]; the
//! experiment runners call it after faults are installed (the executor
//! inspects the schedule) and before the first event is dispatched.
//! Sharding never changes results — checkpoints, goldens and CSVs are
//! byte-identical to the serial engine for every count — so the switch
//! is purely about wall-clock time.

use ibsim_net::Network;
use ibsim_topo::Topology;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// 0 = follow the environment, otherwise the forced shard count
/// (1 = forced serial).
static FORCE: AtomicUsize = AtomicUsize::new(0);

/// Override the environment (last call wins; `--shards` uses this).
pub fn force(n: usize) {
    FORCE.store(n.max(1), Ordering::Relaxed);
}

/// The shard count runs use: forced value if set, else `IBSIM_SHARDS`,
/// else 1 (serial).
pub fn count() -> usize {
    match FORCE.load(Ordering::Relaxed) {
        0 => {
            static ENV: OnceLock<usize> = OnceLock::new();
            *ENV.get_or_init(|| {
                std::env::var("IBSIM_SHARDS")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or(1)
            })
        }
        n => n,
    }
}

/// Install the sharded executor on `net` when the count is above one.
/// Call after faults are installed and before the first event is
/// dispatched. Fabrics or schedules the executor cannot split (single
/// leaf group, BECN-loss faults) silently stay serial.
pub fn arm(net: &mut Network, topo: &Topology) {
    let n = count();
    if n > 1 {
        net.set_shards(topo, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibsim_net::NetConfig;
    use ibsim_topo::FatTreeSpec;

    // One test owns the global toggle: interleaving force() calls from
    // parallel tests would race.
    #[test]
    fn force_wins_and_arms_networks() {
        force(4);
        assert_eq!(count(), 4);
        let topo = FatTreeSpec::TEST_8.build();
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net, &topo);
        assert!(net.shard_count() > 1);

        // One leaf group: nothing to cut, the arm is a silent no-op.
        let single = ibsim_topo::single_switch(4, 2);
        let mut net = Network::new(&single, NetConfig::paper());
        arm(&mut net, &single);
        assert_eq!(net.shard_count(), 1);

        force(1);
        assert_eq!(count(), 1);
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net, &topo);
        assert_eq!(net.shard_count(), 1);
    }
}
