//! Fault drills: run a hotspot scenario with a fault schedule, sample
//! throughput in fixed bins across the fault window, and distil the
//! samples into per-run recovery metrics (time-to-recover, victim
//! floor, CCTI decay) via [`ibsim_faults::RecoveryMetrics`].

use crate::experiment::RunDurations;
use ibsim_engine::time::{Time, TimeDelta};
use ibsim_faults::{FaultStats, RecoveryMetrics, Sample};
use ibsim_net::{FaultSchedule, FlightKind, NetConfig, Network};
use ibsim_topo::Topology;
use ibsim_traffic::{RoleSpec, Scenario};
use serde::Serialize;

/// Everything one drill run reports — serialised as the CI artifact.
#[derive(Clone, Debug, Serialize)]
pub struct DrillReport {
    /// Spec echo: when the first transition fires / the last clears, µs.
    pub fault_start_us: f64,
    pub fault_clear_us: f64,
    /// Per-bin victim (non-hotspot) throughput and worst CCTI.
    pub samples: Vec<Sample>,
    /// The distilled recovery metrics (None when the run ended before a
    /// pre-fault baseline existed).
    pub recovery: Option<RecoveryMetrics>,
    /// What the schedule actually did.
    pub fault_stats: FaultStats,
    /// Sanctioned CNP drops ledgered by the oracle (0 when audit off).
    pub audited_sanctioned_drops: u64,
    /// Unsanctioned violations found by the end-of-run audit pass. The
    /// caller fails the run when this is nonzero.
    pub unsanctioned_violations: usize,
    /// The configured victim-throughput floor (Gbit/s), if any.
    pub floor_gbps: Option<f64>,
    /// Bins whose victim throughput fell below the floor. Each breach
    /// is also recorded in the flight window; the first one dumps it.
    pub floor_breaches: usize,
}

/// Run `roles` on `topo` for `dur.total()`, with `schedule` installed,
/// sampling the non-hotspot receive rate every `bin`. The measurement
/// meters restart per bin, so each [`Sample`] is an independent window
/// average; warmup bins are sampled too (the recovery baseline needs
/// pre-fault bins). Panics on an unsanctioned audit violation *after*
/// serialising the report — callers get the artifact either way.
pub fn run_drill(
    topo: &Topology,
    cfg: NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    bin: TimeDelta,
    schedule: &FaultSchedule,
) -> (DrillReport, ibsim_check::AuditReport) {
    run_drill_floor(topo, cfg, roles, dur, bin, schedule, None)
}

/// As [`run_drill`], with an optional victim-throughput floor in
/// Gbit/s. Every bin below the floor is counted and recorded as a
/// `FloorBreach` flight event; the first breach dumps the flight
/// window (events + current metric sample) to
/// `flight_breach_drill.json` in the telemetry out dir — the same
/// automatic-dump contract an unsanctioned audit violation has.
#[allow(clippy::too_many_arguments)]
pub fn run_drill_floor(
    topo: &Topology,
    cfg: NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    bin: TimeDelta,
    schedule: &FaultSchedule,
    floor_gbps: Option<f64>,
) -> (DrillReport, ibsim_check::AuditReport) {
    assert!(!bin.is_zero(), "drill bin must be positive");
    let mut net = Network::new(topo, cfg);
    crate::audit::arm(&mut net);
    crate::telemetry::arm(&mut net);
    crate::trace::arm(&mut net);
    crate::profile::arm(&mut net);
    net.install_faults(schedule.clone());
    let sc = Scenario::install_opts(roles, &mut net, ibsim_net::PAPER_MSG_BYTES, true);
    crate::trace::arm_hotspots(&mut net, &sc.assignment.hotspots, topo.num_hcas);

    let t_end = Time::ZERO + dur.total();
    let mut samples: Vec<Sample> = Vec::new();
    let mut floor_breaches = 0usize;
    let mut t = Time::ZERO;
    while t < t_end {
        let stop = (t + bin).min(t_end);
        net.start_measurement();
        net.run_until(stop);
        net.stop_measurement();
        let s = Sample {
            t_us: stop.as_ps() as f64 / 1e6,
            gbps: sc.non_hotspot_avg_rx(&net),
            max_ccti: net.max_ccti(),
        };
        if floor_gbps.is_some_and(|floor| s.gbps < floor) {
            floor_breaches += 1;
            net.flight_note(
                FlightKind::FloorBreach,
                "drill",
                format!(
                    "bin ending {:.0}µs: victims {:.3} Gbit/s < floor {:.3}",
                    s.t_us,
                    s.gbps,
                    floor_gbps.unwrap()
                ),
            );
            if floor_breaches == 1 {
                if let Some(doc) = net.flight_dump_json("drill floor breach") {
                    let dir = crate::telemetry::out_dir();
                    std::fs::create_dir_all(&dir).expect("create telemetry out dir");
                    std::fs::write(dir.join("flight_breach_drill.json"), doc)
                        .expect("write breach dump");
                }
            }
        }
        samples.push(s);
        t = stop;
    }

    let (start, clear) = schedule
        .span()
        .map(|(s, c)| (s.as_ps() as f64 / 1e6, c.as_ps() as f64 / 1e6))
        .unwrap_or((0.0, 0.0));
    let recovery = RecoveryMetrics::compute(&samples, start, clear);
    crate::telemetry::finish(&net, "drill", &sc.assignment.hotspots);
    crate::trace::finish(&net, "drill");
    crate::profile::finish(&net, "drill");
    let audit = net.audit_checked();
    let report = DrillReport {
        fault_start_us: start,
        fault_clear_us: clear,
        samples,
        recovery,
        fault_stats: net.fault_stats().copied().unwrap_or_default(),
        audited_sanctioned_drops: audit.sanctioned_drops,
        unsanctioned_violations: audit.unsanctioned().count(),
        floor_gbps,
        floor_breaches,
    };
    (report, audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibsim_topo::FatTreeSpec;

    fn drill_roles(n: usize) -> RoleSpec {
        RoleSpec {
            num_nodes: n,
            num_hotspots: 1,
            b_pct: 0,
            b_p: 0,
            c_pct_of_rest: 80,
        }
    }

    #[test]
    fn drill_samples_cover_the_run_and_metrics_emerge() {
        let topo = FatTreeSpec::TEST_8.build();
        let schedule =
            FaultSchedule::from_spec("flap:link=hca:2,at=1500us,dur=500us,factor=stall", 7)
                .unwrap();
        let (report, _) = run_drill(
            &topo,
            NetConfig::paper(),
            drill_roles(8),
            RunDurations::new_ms(1, 3),
            TimeDelta::from_us(250),
            &schedule,
        );
        assert_eq!(report.samples.len(), 16, "4 ms / 250 us bins");
        assert!(report.samples.windows(2).all(|w| w[0].t_us < w[1].t_us));
        assert_eq!(report.fault_start_us, 1500.0);
        assert_eq!(report.fault_clear_us, 2000.0);
        let r = report.recovery.expect("6 pre-fault bins exist");
        assert!(r.pre_fault_gbps > 0.0);
        assert!(
            r.floor_gbps < r.pre_fault_gbps,
            "a stalled victim link must dent throughput: floor {} vs pre {}",
            r.floor_gbps,
            r.pre_fault_gbps
        );
        assert_eq!(report.unsanctioned_violations, 0);
    }

    #[test]
    fn floor_breaches_are_counted_per_bin() {
        let topo = FatTreeSpec::TEST_8.build();
        let schedule =
            FaultSchedule::from_spec("flap:link=hca:2,at=400us,dur=200us,factor=stall", 7)
                .unwrap();
        let (report, _) = run_drill_floor(
            &topo,
            NetConfig::paper(),
            drill_roles(8),
            RunDurations::new_ms(0, 1),
            TimeDelta::from_us(250),
            &schedule,
            Some(1e6), // unreachable floor: every bin breaches
        );
        assert_eq!(report.floor_gbps, Some(1e6));
        assert_eq!(report.floor_breaches, report.samples.len());
        let (report, _) = run_drill_floor(
            &topo,
            NetConfig::paper(),
            drill_roles(8),
            RunDurations::new_ms(0, 1),
            TimeDelta::from_us(250),
            &schedule,
            Some(0.0), // throughput is never negative: no breach
        );
        assert_eq!(report.floor_breaches, 0);
    }

    #[test]
    fn drill_recovers_after_the_flap_clears() {
        let topo = FatTreeSpec::TEST_8.build();
        let schedule =
            FaultSchedule::from_spec("flap:link=hca:2,at=1000us,dur=300us,factor=stall", 7)
                .unwrap();
        let (report, _) = run_drill(
            &topo,
            NetConfig::paper(),
            drill_roles(8),
            RunDurations::new_ms(1, 4),
            TimeDelta::from_us(200),
            &schedule,
        );
        let r = report.recovery.expect("pre-fault bins exist");
        let ttr = r
            .time_to_recover_us
            .expect("throughput must return to 95% of baseline");
        assert!(ttr >= 0.0);
        assert!(r.post_fault_gbps > 0.9 * r.pre_fault_gbps);
    }
}
