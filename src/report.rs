//! Human- and machine-readable output for the experiment binaries:
//! aligned text tables, CSV files, JSON dumps and a small ASCII line
//! plot for eyeballing figure shapes in a terminal.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Render rows as an aligned monospace table.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
        }
        out.pop();
        out.pop();
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Write a CSV file (naive quoting: cells containing commas or quotes
/// are double-quoted).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

/// A labelled series for [`ascii_plot`].
pub struct PlotSeries<'a> {
    pub label: &'a str,
    pub points: Vec<(f64, f64)>,
}

/// Plot series as ASCII art (x left-to-right, y bottom-to-top). Each
/// series is drawn with its own glyph; the legend maps glyphs to labels.
pub fn ascii_plot(series: &[PlotSeries<'_>], width: usize, height: usize) -> String {
    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@'];
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return "(no data)\n".into();
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }
    ymin = ymin.min(0.0);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = g;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{ymax:>10.2} ┐");
    for row in &grid {
        let _ = writeln!(out, "{:>10} │{}", "", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{ymin:>10.2} └{}", "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>11}{xmin:<10.1}{:>w$}{xmax:.1}",
        "",
        "",
        w = width.saturating_sub(20)
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>11}{} = {}", "", GLYPHS[si % GLYPHS.len()], s.label);
    }
    out
}

/// Serialize any result structure to pretty JSON on disk.
pub fn write_json<T: serde::Serialize>(path: &Path, value: &T) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string_pretty(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = ascii_table(
            &["a", "longer"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    longer"));
        assert!(lines[2].starts_with("1    2"));
        assert!(lines[3].starts_with("333  4"));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let dir = std::env::temp_dir().join("ibsim_csv_test");
        let p = dir.join("t.csv");
        write_csv(
            &p,
            &["x", "note"],
            &[
                vec!["1".into(), "a,b".into()],
                vec!["2".into(), "q\"q".into()],
            ],
        )
        .unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"q\"\"q\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plot_renders_extremes() {
        let s = [PlotSeries {
            label: "t",
            points: vec![(0.0, 0.0), (10.0, 5.0)],
        }];
        let out = ascii_plot(&s, 40, 10);
        assert!(out.contains('*'));
        assert!(out.contains("t"));
        assert!(out.lines().count() > 10);
    }

    #[test]
    fn plot_handles_empty() {
        assert_eq!(ascii_plot(&[], 10, 5), "(no data)\n");
    }

    #[test]
    fn json_roundtrip() {
        #[derive(serde::Serialize)]
        struct S {
            a: u32,
        }
        let dir = std::env::temp_dir().join("ibsim_json_test");
        let p = dir.join("t.json");
        write_json(&p, &S { a: 7 }).unwrap();
        assert!(std::fs::read_to_string(&p).unwrap().contains("\"a\": 7"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
