//! Process-wide checkpoint/resume switchboard for experiment runs.
//!
//! Experiment binaries (and CI) drive state capture without threading
//! parameters through every runner, mirroring [`crate::audit`] and
//! [`crate::telemetry`]:
//!
//! * `--checkpoint-at US` / `IBSIM_CKPT_AT=US` — every run this process
//!   performs saves a full-state checkpoint when its simulated clock
//!   first reaches `US` microseconds;
//! * `--checkpoint-dir DIR` / `IBSIM_CKPT_DIR=DIR` — where checkpoint
//!   files land (default `checkpoints/`);
//! * `--resume-from DIR` / `IBSIM_RESUME=DIR` — before running, each
//!   run looks for its own checkpoint in `DIR` and fast-forwards the
//!   fabric to the saved state. Runs with no matching file start from
//!   scratch, so a multi-run binary (Table II's four cells, a CC pair)
//!   resumes exactly the cells that were checkpointed.
//!
//! One file per run: the name encodes the topology digest (switch /
//! HCA / channel counts, VLs, seed, CC on/off) *and* a workload label
//! (role split, durations, hotspot lifetime, fault count), because a
//! single binary runs many scenarios over the same fabric and seed.
//! Resuming against a file whose header digest disagrees with the live
//! fabric fails loudly, naming the first mismatching field — the
//! format- and topology-validation layer lives in `ibsim-state`.

use ibsim_engine::time::{Time, TimeDelta, PS_PER_US};
use ibsim_net::{FaultSchedule, Network, NetworkState};
use ibsim_state::{CheckpointHeader, TopoDigest};
use ibsim_traffic::RoleSpec;
use serde::Deserialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::experiment::RunDurations;

/// 0 = defer to the environment, `u64::MAX` = forced off, anything
/// else = forced checkpoint time in picoseconds.
static FORCE_AT: AtomicU64 = AtomicU64::new(0);
static DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static RESUME: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Force a checkpoint time for every subsequent run in this process
/// (`Some(t)`) or force checkpointing off (`None`), overriding
/// `IBSIM_CKPT_AT`.
pub fn force_at(at: Option<Time>) {
    let v = match at {
        None => u64::MAX,
        Some(t) => t.as_ps().max(1),
    };
    FORCE_AT.store(v, Ordering::Relaxed);
}

/// The checkpoint time currently in effect, if any.
pub fn save_at() -> Option<Time> {
    match FORCE_AT.load(Ordering::Relaxed) {
        0 => env_at(),
        u64::MAX => None,
        ps => Some(Time(ps)),
    }
}

fn env_at() -> Option<Time> {
    static CACHE: OnceLock<Option<u64>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let us = std::env::var("IBSIM_CKPT_AT").ok()?;
            let us: u64 = us
                .parse()
                .unwrap_or_else(|_| panic!("IBSIM_CKPT_AT wants microseconds, got {us:?}"));
            (us > 0).then_some(us * PS_PER_US)
        })
        .map(Time)
}

/// Override the checkpoint output directory (`--checkpoint-dir`).
pub fn set_dir(dir: impl Into<PathBuf>) {
    *DIR.lock().unwrap() = Some(dir.into());
}

/// The directory checkpoint files are written to.
pub fn dir() -> PathBuf {
    if let Some(d) = DIR.lock().unwrap().clone() {
        return d;
    }
    std::env::var("IBSIM_CKPT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("checkpoints"))
}

/// Force a resume directory (`--resume-from`), overriding
/// `IBSIM_RESUME`. `None` reverts to the environment.
pub fn force_resume(dir: Option<PathBuf>) {
    *RESUME.lock().unwrap() = dir;
}

/// The directory runs resume from, if resuming is requested at all.
pub fn resume_dir() -> Option<PathBuf> {
    if let Some(d) = RESUME.lock().unwrap().clone() {
        return Some(d);
    }
    std::env::var("IBSIM_RESUME").ok().map(PathBuf::from)
}

/// The live fabric's identity, embedded in every checkpoint header and
/// re-validated on resume.
pub fn digest(net: &Network) -> TopoDigest {
    TopoDigest {
        switches: net.switches.len() as u64,
        hcas: net.hcas.len() as u64,
        channels: net.channels.len() as u64,
        n_vls: net.cfg.n_vls as u64,
        seed: net.cfg.seed,
        cc: net.cc_enabled(),
        backend: net.cc_backend().name().to_string(),
    }
}

/// The workload half of a run's checkpoint file name: everything that
/// distinguishes two runs sharing a fabric and seed.
pub fn run_label(
    roles: &RoleSpec,
    dur: &RunDurations,
    hotspot_lifetime: Option<TimeDelta>,
    contributors_active: bool,
    faults: Option<&FaultSchedule>,
) -> String {
    format!(
        "r{}-{}-{}-{}-{}_w{}m{}_l{}_a{}_f{}",
        roles.num_nodes,
        roles.num_hotspots,
        roles.b_pct,
        roles.b_p,
        roles.c_pct_of_rest,
        dur.warmup.as_ps(),
        dur.measure.as_ps(),
        hotspot_lifetime.map_or(0, |l| l.as_ps()),
        contributors_active as u8,
        faults.map_or(0, |f| f.faults().len()),
    )
}

/// The checkpoint label of a production-workload run: the canonical
/// `--workload` string (sanitized for file names) plus the durations.
pub fn workload_label(spec: &ibsim_traffic::WorkloadSpec, dur: &RunDurations) -> String {
    let s: String = spec
        .to_string()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    format!("wl-{}_w{}m{}", s, dur.warmup.as_ps(), dur.measure.as_ps())
}

/// Deterministic checkpoint file name for one run. The backend tag is
/// only spliced in for non-default backends, so every ibcc checkpoint
/// keeps its pre-backend-refactor name.
pub fn file_name(d: &TopoDigest, label: &str) -> String {
    let backend = if d.backend == ibsim_state::BACKEND_IBCC {
        String::new()
    } else {
        format!("_{}", d.backend)
    };
    format!(
        "ckpt_s{}h{}c{}v{}_seed{:x}_cc{}{}_{}.json",
        d.switches, d.hcas, d.channels, d.n_vls, d.seed, d.cc as u8, backend, label
    )
}

/// Save a checkpoint of `net` into [`dir`], returning the path.
/// Panics on I/O failure: a silently missing checkpoint would turn a
/// later resume into a silent from-scratch rerun.
pub fn save(net: &Network, label: &str) -> PathBuf {
    let d = digest(net);
    let out = dir();
    std::fs::create_dir_all(&out)
        .unwrap_or_else(|e| panic!("checkpoint: cannot create {}: {e}", out.display()));
    let path = out.join(file_name(&d, label));
    let header = CheckpointHeader::new(net.now().as_ps(), net.events_processed(), d);
    ibsim_state::save(&path, &header, &net.checkpoint())
        .unwrap_or_else(|e| panic!("checkpoint: {e}"));
    eprintln!(
        "checkpoint: saved {} at t={:.1} us ({} events)",
        path.display(),
        net.now().as_us_f64(),
        net.events_processed()
    );
    path
}

/// Look for this run's checkpoint in the resume directory. Returns the
/// saved clock and decoded state, or `None` when resuming is off or no
/// matching file exists. A file that exists but fails format, topology
/// or payload validation panics with the structured `ibsim-state`
/// error — resuming from the wrong checkpoint must never degrade into
/// a silent cold start.
pub fn load_for(net: &Network, label: &str) -> Option<(Time, NetworkState)> {
    let from = resume_dir()?;
    let d = digest(net);
    let path = from.join(file_name(&d, label));
    if !path.exists() {
        return None;
    }
    let (header, state) = ibsim_state::load(&path)
        .unwrap_or_else(|e| panic!("resume {}: {e}", path.display()));
    header
        .validate_topo(&d)
        .unwrap_or_else(|e| panic!("resume {}: {e}", path.display()));
    let state = NetworkState::from_value(&state)
        .unwrap_or_else(|e| panic!("resume {}: corrupt state: {e}", path.display()));
    eprintln!(
        "checkpoint: resuming {} from t={:.1} us ({} events)",
        path.display(),
        Time(header.at_ps).as_us_f64(),
        header.events_processed
    );
    Some((Time(header.at_ps), state))
}
