//! Paper-figure time-series export: distil a telemetry sample table
//! into the data layout of the paper's Fig. 5–10 panels — per-sample
//! hotspot vs. victim (non-hotspot) receive throughput, total network
//! throughput, worst CCTI, and throttled-flow count over time. The
//! windy/moving figures plot exactly these series: the congestion dip
//! when hotspots ignite and the post-recovery return once CC brakes
//! the contributors.

use ibsim_telemetry::SampleTable;
use serde::Serialize;
use std::fmt::Write as _;

/// One figure sample (a row of `figure_{run}.csv`).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FigureRow {
    pub t_us: f64,
    /// Mean receive rate over the hotspot (oversubscribed) nodes.
    pub hotspot_rx_gbps: f64,
    /// Mean receive rate over every other node — the paper's victim
    /// flows, the ones congestion spreading punishes.
    pub victim_rx_gbps: f64,
    /// Sum of every node's receive rate.
    pub total_rx_gbps: f64,
    pub max_ccti: f64,
    pub throttled_flows: f64,
}

/// The distilled figure series for one run.
#[derive(Clone, Debug, Serialize)]
pub struct FigureSeries {
    pub rows: Vec<FigureRow>,
}

impl FigureSeries {
    /// Group the table's `hca{i}.rx_gbps` columns by hotspot
    /// membership and reduce each sample to one figure row. Unknown
    /// column layouts (no per-HCA rx columns) yield empty groups and
    /// zero series rather than panicking.
    pub fn from_table(table: &SampleTable, hotspots: &[u32]) -> Self {
        let mut hot_cols = Vec::new();
        let mut victim_cols = Vec::new();
        for (ci, name) in table.names().iter().enumerate() {
            let Some(rest) = name.strip_prefix("hca") else {
                continue;
            };
            let Some(idx) = rest.strip_suffix(".rx_gbps") else {
                continue;
            };
            let Ok(i) = idx.parse::<u32>() else { continue };
            if hotspots.contains(&i) {
                hot_cols.push(ci);
            } else {
                victim_cols.push(ci);
            }
        }
        let ccti_col = table.col("fabric.max_ccti");
        let throttled_col = table.col("fabric.throttled_flows");

        let mean = |vals: &[f64], cols: &[usize]| -> f64 {
            if cols.is_empty() {
                0.0
            } else {
                cols.iter().map(|&c| vals[c]).sum::<f64>() / cols.len() as f64
            }
        };
        let rows = table
            .rows()
            .map(|r| {
                let sum_all: f64 = hot_cols
                    .iter()
                    .chain(&victim_cols)
                    .map(|&c| r.values[c])
                    .sum();
                FigureRow {
                    t_us: r.t_ps as f64 / 1e6,
                    hotspot_rx_gbps: mean(&r.values, &hot_cols),
                    victim_rx_gbps: mean(&r.values, &victim_cols),
                    total_rx_gbps: sum_all,
                    max_ccti: ccti_col.map_or(0.0, |c| r.values[c]),
                    throttled_flows: throttled_col.map_or(0.0, |c| r.values[c]),
                }
            })
            .collect();
        FigureSeries { rows }
    }

    /// The figure CSV: one row per sample, the paper panels' columns.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("t_us,hotspot_rx_gbps,victim_rx_gbps,total_rx_gbps,max_ccti,throttled_flows\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                r.t_us,
                r.hotspot_rx_gbps,
                r.victim_rx_gbps,
                r.total_rx_gbps,
                r.max_ccti,
                r.throttled_flows
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibsim_telemetry::MetricKind;

    fn table() -> SampleTable {
        let names = vec![
            "hca0.rx_gbps".to_string(),
            "hca1.rx_gbps".to_string(),
            "hca2.rx_gbps".to_string(),
            "fabric.max_ccti".to_string(),
            "fabric.throttled_flows".to_string(),
        ];
        let kinds = vec![MetricKind::Counter; 5];
        let mut t = SampleTable::new(names, kinds, 16);
        t.push(0, &[10.0, 4.0, 6.0, 0.0, 0.0]);
        t.push(100_000_000, &[12.0, 2.0, 4.0, 8.0, 3.0]);
        t
    }

    #[test]
    fn groups_by_hotspot_membership() {
        let fig = FigureSeries::from_table(&table(), &[0]);
        assert_eq!(fig.rows.len(), 2);
        let r = &fig.rows[1];
        assert_eq!(r.t_us, 100.0);
        assert_eq!(r.hotspot_rx_gbps, 12.0);
        assert_eq!(r.victim_rx_gbps, 3.0, "mean of hca1, hca2");
        assert_eq!(r.total_rx_gbps, 18.0);
        assert_eq!(r.max_ccti, 8.0);
        assert_eq!(r.throttled_flows, 3.0);
    }

    #[test]
    fn csv_has_the_figure_layout() {
        let fig = FigureSeries::from_table(&table(), &[0]);
        let csv = fig.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "t_us,hotspot_rx_gbps,victim_rx_gbps,total_rx_gbps,max_ccti,throttled_flows"
        );
        assert_eq!(lines.next().unwrap(), "0,10,5,20,0,0");
    }

    #[test]
    fn empty_groups_do_not_panic() {
        let t = SampleTable::new(vec!["x".into()], vec![MetricKind::Gauge], 4);
        let fig = FigureSeries::from_table(&t, &[0]);
        assert!(fig.rows.is_empty());
    }
}
