//! Multi-seed replication: run the same scenario under several seeds
//! and report mean ± confidence interval, so experiment outputs carry
//! statistical weight rather than single-draw noise.

use crate::experiment::{run_scenario, RunDurations, ScenarioResult};
use crate::sweep::parallel_map;
use ibsim_engine::time::TimeDelta;
use ibsim_net::NetConfig;
use ibsim_topo::Topology;
use ibsim_traffic::RoleSpec;
use serde::Serialize;

/// Mean, sample standard deviation and 95 % confidence half-width of
/// one metric across replicas.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Estimate {
    pub mean: f64,
    pub std: f64,
    pub ci95: f64,
    pub n: usize,
}

impl Estimate {
    /// Aggregate a sample. Empty input yields a zero estimate.
    pub fn from_samples(xs: &[f64]) -> Estimate {
        let n = xs.len();
        if n == 0 {
            return Estimate {
                mean: 0.0,
                std: 0.0,
                ci95: 0.0,
                n: 0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Estimate {
                mean,
                std: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let std = var.sqrt();
        // Normal approximation; fine for the ≥5 replicas we use.
        let ci95 = 1.96 * std / (n as f64).sqrt();
        Estimate { mean, std, ci95, n }
    }

    /// Does `other`'s mean fall outside this estimate's 95 % interval?
    pub fn differs_from(&self, other: &Estimate) -> bool {
        (self.mean - other.mean).abs() > self.ci95 + other.ci95
    }

    pub fn display(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.ci95)
    }
}

/// Replicated scenario metrics.
#[derive(Clone, Debug, Serialize)]
pub struct ReplicatedResult {
    pub hotspot_rx: Estimate,
    pub non_hotspot_rx: Estimate,
    pub all_rx: Estimate,
    pub total_rx: Estimate,
    pub replicas: Vec<ScenarioResult>,
}

/// Run `run_scenario` once per seed (in parallel) and aggregate.
pub fn run_scenario_replicated(
    topo: &Topology,
    cfg: &NetConfig,
    roles: RoleSpec,
    dur: RunDurations,
    hotspot_lifetime: Option<TimeDelta>,
    seeds: &[u64],
    threads: usize,
) -> ReplicatedResult {
    let replicas = parallel_map(seeds, threads, |&seed| {
        run_scenario(
            topo,
            cfg.clone().with_seed(seed),
            roles,
            dur,
            hotspot_lifetime,
        )
    });
    let pick = |f: fn(&ScenarioResult) -> f64| {
        Estimate::from_samples(&replicas.iter().map(f).collect::<Vec<_>>())
    };
    ReplicatedResult {
        hotspot_rx: pick(|r| r.hotspot_rx),
        non_hotspot_rx: pick(|r| r.non_hotspot_rx),
        all_rx: pick(|r| r.all_rx),
        total_rx: pick(|r| r.total_rx),
        replicas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_of_constant_sample() {
        let e = Estimate::from_samples(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(e.mean, 5.0);
        assert_eq!(e.std, 0.0);
        assert_eq!(e.ci95, 0.0);
        assert_eq!(e.n, 4);
    }

    #[test]
    fn estimate_of_spread_sample() {
        let e = Estimate::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.mean - 3.0).abs() < 1e-12);
        assert!((e.std - (2.5f64).sqrt()).abs() < 1e-12);
        assert!(e.ci95 > 0.0);
        assert!(e.display().contains("±"));
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(Estimate::from_samples(&[]).n, 0);
        let one = Estimate::from_samples(&[7.0]);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn differs_from_detects_separation() {
        let a = Estimate::from_samples(&[1.0, 1.1, 0.9]);
        let b = Estimate::from_samples(&[5.0, 5.1, 4.9]);
        assert!(a.differs_from(&b));
        let c = Estimate::from_samples(&[1.0, 1.2, 0.8]);
        assert!(!a.differs_from(&c));
    }

    #[test]
    fn replication_runs_and_aggregates() {
        use crate::prelude::*;
        let topo = FatTreeSpec::TEST_8.build();
        let roles = RoleSpec {
            num_nodes: 8,
            num_hotspots: 1,
            b_pct: 0,
            b_p: 0,
            c_pct_of_rest: 80,
        };
        let r = run_scenario_replicated(
            &topo,
            &NetConfig::paper(),
            roles,
            RunDurations::new_ms(1, 2),
            None,
            &[1, 2, 3],
            1,
        );
        assert_eq!(r.replicas.len(), 3);
        assert_eq!(r.hotspot_rx.n, 3);
        // 8 nodes, one hotspot, CC on: the hotspot runs hot but the
        // coarse CCT index at this tiny scale costs utilisation.
        assert!(r.hotspot_rx.mean > 5.0, "{:?}", r.hotspot_rx);
        // Different seeds place hotspots differently; totals vary but
        // stay positive.
        assert!(r.total_rx.mean > 0.0);
    }
}
