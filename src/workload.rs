//! One-call runner for the production-shaped workloads: build a
//! network, install a [`WorkloadSpec`], stream its trace (if any),
//! measure, drain, and summarise per category — the workload twin of
//! [`crate::experiment::run_scenario_faults`], sharing every
//! process-wide switchboard (audit, telemetry, trace, profile, CC
//! backend, shards, checkpoint/resume).
//!
//! The run is segmented on a fixed 100 µs clock. Segment boundaries are
//! where the trace feeder installs the next look-ahead window of
//! records and where drain is detected — *deterministic* instants,
//! independent of sharding and of where a checkpoint fell, which is
//! what keeps `--shards N` and `--resume-from` byte-identical for every
//! generator.

use crate::experiment::RunDurations;
use ibsim_engine::time::{Time, TimeDelta};
use ibsim_net::{NetConfig, Network};
use ibsim_topo::Topology;
use ibsim_traffic::{Workload, WorkloadSpec};
use serde::Serialize;

/// Feed/drain segment length. Also the trace feeder's look-ahead
/// granularity: at each boundary the feeder installs records up to one
/// segment past the next boundary.
pub const SEGMENT: TimeDelta = TimeDelta(100 * ibsim_engine::time::PS_PER_US);

/// Everything a single workload run reports.
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadResult {
    /// Canonical `--workload` string of what ran.
    pub workload: String,
    /// Was congestion control enabled?
    pub cc: bool,
    /// Average receive rate (Gbit/s) per workload category over the
    /// measurement window (e.g. incast's `target` vs `senders`).
    pub category_rx: Vec<(String, f64)>,
    /// Sum of all nodes' receive rates (Gbit/s).
    pub total_rx: f64,
    /// Median end-to-end data latency in microseconds — the flow
    /// completion proxy for these message-sized workloads.
    pub latency_p50_us: f64,
    /// 99th-percentile end-to-end data latency in microseconds.
    pub latency_p99_us: f64,
    pub fecn_marks: u64,
    pub becns: u64,
    pub max_ccti: u16,
    /// Did every class finish and every packet drain before the cap?
    pub drained: bool,
    /// Segment boundary at which the fabric was first observed drained
    /// (µs); meaningful only when `drained`.
    pub drained_at_us: f64,
    /// Bytes the schedule offered (trace replay: bytes actually fed).
    pub offered_bytes: u64,
    /// Trace records replayed (0 for scripted workloads).
    pub records_fed: u64,
    /// Events processed (simulator work, not a paper metric).
    pub events: u64,
}

/// Run one workload on `topo`. Warmup/measure windows come from `dur`;
/// after `dur.total()` the run keeps going (unmeasured) until the
/// workload drains or a cap of four extra `dur.total()` passes.
pub fn run_workload(
    topo: &Topology,
    cfg: NetConfig,
    spec: &WorkloadSpec,
    dur: RunDurations,
) -> WorkloadResult {
    let mut cfg = cfg;
    crate::backend::apply(&mut cfg);
    let mut net = Network::new(topo, cfg);
    crate::audit::arm(&mut net);
    crate::telemetry::arm(&mut net);
    crate::trace::arm(&mut net);
    crate::profile::arm(&mut net);
    crate::shards::arm(&mut net, topo);
    let mut wl = spec
        .install(&mut net)
        .unwrap_or_else(|e| panic!("workload install: {e}"));

    // Optional resume: restore runtime state, then fast-forward the
    // trace reader past the records the restored scripts already carry.
    let label = crate::checkpoint::workload_label(spec, &dur);
    let mut resumed_at = None;
    if let Some((at, state)) = crate::checkpoint::load_for(&net, &label) {
        net.restore(&state)
            .unwrap_or_else(|e| panic!("checkpoint restore failed: {e}"));
        if let Some(feeder) = wl.feeder.as_mut() {
            let fed: u64 = (0..feeder.nodes()).map(|v| net.script_fed(v, 0)).sum();
            feeder
                .skip_fed(fed)
                .unwrap_or_else(|e| panic!("resume: trace re-read failed: {e}"));
        }
        resumed_at = Some(at);
    }
    let mut ck = CkptSegments::new(label, resumed_at);

    let warmup_end = Time::ZERO + dur.warmup;
    let t_end = Time::ZERO + dur.total();
    // CC-throttled workloads (incast especially) drain far slower than
    // the offered-bytes arithmetic suggests — sources back off under
    // BECN. Allow four extra run-lengths before giving up.
    let drain_cap = t_end + TimeDelta(4 * dur.total().0);

    // Segment cursor. A resumed run re-enters at the boundary its
    // capture segment started on; the feeder's `skip_fed` makes the
    // replayed boundary feeds no-ops, so the schedule every class sees
    // is identical to the uninterrupted run.
    let mut s = Time::ZERO;
    if let Some(at) = resumed_at {
        while s + SEGMENT <= at {
            s += SEGMENT;
        }
    }
    if warmup_end == Time::ZERO && resumed_at.is_none() && !net.is_measuring() {
        net.start_measurement();
    }
    let mut drained_at = None;
    while s < drain_cap {
        let next = (s + SEGMENT).min(drain_cap);
        if let Some(feeder) = wl.feeder.as_mut() {
            feeder
                .feed_until(&mut net, next + SEGMENT)
                .unwrap_or_else(|e| panic!("trace feed: {e}"));
        }
        // Measurement edges may fall inside a segment; split the run
        // there so the window opens and closes exactly where `dur`
        // says. (`run_until` leaves the clock at the last event, so
        // the toggles key off the segment plan, never off `now()`.)
        for edge in [warmup_end, t_end] {
            if s < edge && edge <= next {
                ck.run_until(&mut net, edge);
                if edge == warmup_end && !net.is_measuring() {
                    net.start_measurement();
                } else if edge == t_end && net.is_measuring() {
                    net.stop_measurement();
                }
            }
        }
        ck.run_until(&mut net, next);
        s = next;
        let fed_done = wl.feeder.as_ref().map_or(true, |f| f.done());
        if drained_at.is_none() && fed_done && net.workload_drained() {
            drained_at = Some(s);
            if s >= t_end {
                break;
            }
        }
        if s >= t_end && drained_at.is_some() {
            break;
        }
    }
    if net.is_measuring() {
        net.stop_measurement();
    }

    let cc_hint = if net.cc_enabled() { "cc_on" } else { "cc_off" };
    crate::telemetry::finish(&net, cc_hint, &[]);
    crate::trace::finish(&net, cc_hint);
    crate::profile::finish(&net, cc_hint);
    net.audit_checked().raise();

    let records_fed = wl.feeder.as_ref().map_or(0, |f| f.records_fed());
    summarize(&net, &wl, drained_at, records_fed)
}

fn summarize(
    net: &Network,
    wl: &Workload,
    drained_at: Option<Time>,
    records_fed: u64,
) -> WorkloadResult {
    let lat = net.latency_histogram();
    let to_us = |ps: Option<u64>| ps.map_or(0.0, |v| v as f64 / 1e6);
    WorkloadResult {
        workload: wl.spec.to_string(),
        cc: net.cc_enabled(),
        category_rx: wl.category_rates(net),
        total_rx: net.total_rx_gbps(),
        latency_p50_us: to_us(lat.quantile(0.5)),
        latency_p99_us: to_us(lat.quantile(0.99)),
        fecn_marks: net.total_fecn_marks(),
        becns: net.total_becns(),
        max_ccti: net.max_ccti(),
        drained: drained_at.is_some(),
        drained_at_us: drained_at.map_or(0.0, |t| t.as_us_f64()),
        offered_bytes: wl.offered_bytes,
        records_fed,
        events: net.events_processed(),
    }
}

/// Splits each `run_until` segment at the pending checkpoint instant —
/// the workload runner's copy of the experiment runner's hook, kept
/// local because the segment loop also owns feeding.
struct CkptSegments {
    pending: Option<Time>,
    label: String,
}

impl CkptSegments {
    fn new(label: String, resumed_at: Option<Time>) -> Self {
        let mut pending = crate::checkpoint::save_at();
        if let (Some(at), Some(r)) = (pending, resumed_at) {
            if at <= r {
                pending = None;
            }
        }
        CkptSegments { pending, label }
    }

    fn run_until(&mut self, net: &mut Network, to: Time) {
        if let Some(at) = self.pending {
            if at <= to {
                net.run_until(at);
                crate::checkpoint::save(net, &self.label);
                self.pending = None;
            }
        }
        net.run_until(to);
    }
}
