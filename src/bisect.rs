//! Divergence bisector: localise *when* two builds of the same
//! scenario first disagree, and on *which field*.
//!
//! The debugging situation this serves: a run that should be
//! deterministic (same topology, seed and workload) produces different
//! numbers under two configurations — a CC parameter changed, a
//! refactor that was meant to be behaviour-preserving, a suspect
//! optimisation. End-of-run CSVs only say *that* the runs diverged;
//! this module binary-searches over checkpoint times to find the first
//! window in which the two full state trees differ, then names the
//! differing fields via `ibsim_state::diff_values` (JSON-pointer paths
//! like `/hcas/3/cc/flows/0/ccti`).
//!
//! Both sides are re-simulated from scratch for every probe — runs are
//! deterministic, so state at time `t` is a pure function of the
//! configuration, and divergence is monotone: once the trees differ
//! they never re-converge (the differing state feeds every later
//! event). That monotonicity is what makes bisection sound.

use ibsim_cc::CcParams;
use ibsim_engine::time::{Time, TimeDelta};
use ibsim_net::{NetConfig, Network};
use ibsim_state::{diff_values, DiffEntry};
use ibsim_topo::Topology;
use ibsim_traffic::{RoleSpec, Scenario};
use serde::{Serialize, Value};

/// Diff entries whose path contains any of these substrings are not
/// divergence: a deliberately perturbed parameter — and its static
/// per-port mirror (`threshold_bytes`) — differs from t = 0 by
/// construction. Everything *downstream* of the parameter (CCTIs,
/// queue contents, event timing) still counts.
pub const DEFAULT_IGNORE: &[&str] = &["/cc/params", "/threshold_bytes"];

/// Outcome of a successful bisection.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Last probed instant at which the two state trees were identical
    /// (modulo ignored paths).
    pub clean_at: Time,
    /// First probed instant at which they differed. The first divergent
    /// event lies in `(clean_at, diverged_at]`.
    pub diverged_at: Time,
    /// Field-level differences at `diverged_at`, ignored paths removed.
    pub diffs: Vec<DiffEntry>,
    /// Probes performed (pairs of runs).
    pub probes: u32,
}

impl Divergence {
    /// The JSON-pointer path of the most informative differing field:
    /// the first device-state difference (a switch or HCA field) when
    /// one exists, else the first difference of any kind — engine
    /// bookkeeping (`/now`, `/events_processed`) diverges with
    /// everything and names nothing.
    pub fn first_field(&self) -> Option<&str> {
        self.diffs
            .iter()
            .find(|d| d.path.starts_with("/switches") || d.path.starts_with("/hcas"))
            .or_else(|| self.diffs.first())
            .map(|d| d.path.as_str())
    }
}

/// Run `roles` on a fresh fabric to `t` and capture the full state tree
/// as a JSON value. Hotspots stay fixed; the bisector compares fabrics
/// under steady congestion, where CC behaviour differences surface.
pub fn state_value_at(topo: &Topology, cfg: &NetConfig, roles: RoleSpec, t: Time) -> Value {
    let mut net = Network::new(topo, cfg.clone());
    let _sc = Scenario::install_opts(roles, &mut net, ibsim_net::PAPER_MSG_BYTES, true);
    net.run_until(t);
    net.checkpoint().to_value()
}

fn probe(
    topo: &Topology,
    cfg_a: &NetConfig,
    cfg_b: &NetConfig,
    roles: RoleSpec,
    t: Time,
    ignore: &[&str],
) -> Vec<DiffEntry> {
    let a = state_value_at(topo, cfg_a, roles, t);
    let b = state_value_at(topo, cfg_b, roles, t);
    let mut diffs = diff_values(&a, &b, 4096);
    diffs.retain(|d| !ignore.iter().any(|pat| d.path.contains(pat)));
    diffs
}

/// Binary-search `[0, horizon]` for the first window (of width at most
/// `resolution`) in which runs under `cfg_a` and `cfg_b` hold different
/// state. Returns `None` when the two agree over the whole horizon.
///
/// Cost: two full runs per probe, ~`2·log2(horizon/resolution)` runs
/// total — size the topology accordingly.
pub fn bisect_divergence(
    topo: &Topology,
    cfg_a: &NetConfig,
    cfg_b: &NetConfig,
    roles: RoleSpec,
    horizon: Time,
    resolution: TimeDelta,
    ignore: &[&str],
) -> Option<Divergence> {
    assert!(!resolution.is_zero(), "bisect resolution must be positive");
    let mut probes = 0u32;
    let mut run = |t: Time| {
        probes += 1;
        probe(topo, cfg_a, cfg_b, roles, t, ignore)
    };

    let mut hi_diffs = run(horizon);
    if hi_diffs.is_empty() {
        return None;
    }
    let mut lo = Time::ZERO;
    let mut hi = horizon;
    // The two fabrics share all pre-run state except the ignored
    // parameters, but parameter-derived scheduling (CCTI timer phases)
    // can differ from the very first event — probe t = 0 rather than
    // assuming it is clean.
    let zero_diffs = run(Time::ZERO);
    if !zero_diffs.is_empty() {
        return Some(Divergence {
            clean_at: Time::ZERO,
            diverged_at: Time::ZERO,
            diffs: zero_diffs,
            probes,
        });
    }
    while hi.as_ps() - lo.as_ps() > resolution.as_ps() {
        let mid = Time(lo.as_ps() + (hi.as_ps() - lo.as_ps()) / 2);
        let d = run(mid);
        eprintln!(
            "bisect: t={:.1} us -> {}",
            mid.as_us_f64(),
            if d.is_empty() {
                "identical".to_string()
            } else {
                format!("{} fields differ", d.len())
            }
        );
        if d.is_empty() {
            lo = mid;
        } else {
            hi = mid;
            hi_diffs = d;
        }
    }
    Some(Divergence {
        clean_at: lo,
        diverged_at: hi,
        diffs: hi_diffs,
        probes,
    })
}

/// Apply a named single-parameter perturbation to a `CcParams` — the
/// "one build differs by one knob" setup the `bisect` binary drives.
pub fn perturb_cc(params: &mut CcParams, key: &str, value: u64) {
    match key {
        "threshold" => params.threshold = value as u8,
        "packet_size" => params.packet_size = value as u32,
        "marking_rate" => params.marking_rate = value as u16,
        "ccti_increase" => params.ccti_increase = value as u16,
        "ccti_limit" => params.ccti_limit = value as u16,
        "ccti_min" => params.ccti_min = value as u16,
        "ccti_timer" => params.ccti_timer = value as u16,
        other => panic!(
            "unknown CC parameter {other:?}; one of threshold, packet_size, \
             marking_rate, ccti_increase, ccti_limit, ccti_min, ccti_timer"
        ),
    }
}
