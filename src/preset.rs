//! Experiment presets: the paper-exact setup and a scaled-down one.
//!
//! The paper simulates the 648-node Sun DCS 648 over 0.1 s timeslots.
//! That is hours of wall-clock per figure on one machine, so every
//! experiment binary also offers a `quick` preset: the same two-level
//! folded Clos at radix 12 (72 nodes, identical structure and
//! oversubscription) over shorter windows. EXPERIMENTS.md records which
//! preset produced each number.

use crate::experiment::RunDurations;
use ibsim_engine::time::TimeDelta;
use ibsim_net::NetConfig;
use ibsim_topo::{FatTreeSpec, Topology};

/// A ready-to-run experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// 72-node fat tree, millisecond windows: minutes per figure.
    Quick,
    /// 162-node fat tree (radix 18), intermediate fidelity.
    Medium,
    /// The paper's exact 648-node fat tree and 0.1 s windows.
    Paper,
}

impl Preset {
    pub fn parse(s: &str) -> Option<Preset> {
        match s {
            "quick" => Some(Preset::Quick),
            "medium" => Some(Preset::Medium),
            "paper" => Some(Preset::Paper),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Preset::Quick => "quick",
            Preset::Medium => "medium",
            Preset::Paper => "paper",
        }
    }

    pub fn fat_tree_spec(&self) -> FatTreeSpec {
        match self {
            Preset::Quick => FatTreeSpec::QUICK_72,
            Preset::Medium => FatTreeSpec {
                radix: 18,
                leafs: 18,
            },
            Preset::Paper => FatTreeSpec::PAPER_648,
        }
    }

    pub fn topology(&self) -> Topology {
        self.fat_tree_spec().build()
    }

    /// Number of hotspots: the paper uses 8 at 648 nodes; scaled
    /// proportionally (but at least 2) for the smaller instances so
    /// contributors-per-hotspot stays comparable.
    pub fn num_hotspots(&self) -> usize {
        match self {
            Preset::Quick => 2,
            Preset::Medium => 4,
            Preset::Paper => 8,
        }
    }

    /// Warmup/measure windows for fixed-hotspot scenarios.
    pub fn durations(&self) -> RunDurations {
        match self {
            Preset::Quick => RunDurations::new_ms(2, 4),
            Preset::Medium => RunDurations::new_ms(2, 4),
            Preset::Paper => RunDurations::new_ms(20, 100),
        }
    }

    /// Warmup/measure windows for moving-hotspot scenarios (need to
    /// span many hotspot lifetimes).
    pub fn moving_durations(&self) -> RunDurations {
        match self {
            Preset::Quick => RunDurations::new_ms(2, 20),
            Preset::Medium => RunDurations::new_ms(2, 20),
            Preset::Paper => RunDurations::new_ms(10, 100),
        }
    }

    /// Hotspot lifetimes swept by the moving-forest figures, longest
    /// first (the paper: 10 ms down to 1 ms).
    pub fn lifetimes(&self) -> Vec<TimeDelta> {
        match self {
            Preset::Paper => [10, 8, 6, 4, 2, 1]
                .into_iter()
                .map(TimeDelta::from_ms)
                .collect(),
            _ => [4_000, 3_000, 2_000, 1_500, 1_000, 500]
                .into_iter()
                .map(TimeDelta::from_us)
                .collect(),
        }
    }

    /// The p values swept by the windy-forest figures.
    pub fn p_values(&self) -> Vec<u32> {
        match self {
            Preset::Paper => (0..=10).map(|i| i * 10).collect(),
            _ => vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
        }
    }

    /// The network configuration (paper §IV parameters, CC on).
    pub fn net_config(&self) -> NetConfig {
        NetConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for p in [Preset::Quick, Preset::Medium, Preset::Paper] {
            assert_eq!(Preset::parse(p.name()), Some(p));
        }
        assert_eq!(Preset::parse("nope"), None);
    }

    #[test]
    fn topologies_validate() {
        Preset::Quick.topology().validate().unwrap();
        Preset::Medium.topology().validate().unwrap();
        // Paper topology validated in ibsim-topo's own tests (slow).
    }

    #[test]
    fn paper_preset_matches_paper() {
        let p = Preset::Paper;
        assert_eq!(p.topology().num_hcas, 648);
        assert_eq!(p.num_hotspots(), 8);
        assert_eq!(p.durations().measure, TimeDelta::from_ms(100));
        assert_eq!(p.lifetimes()[0], TimeDelta::from_ms(10));
        assert_eq!(*p.lifetimes().last().unwrap(), TimeDelta::from_ms(1));
    }

    #[test]
    fn lifetimes_decreasing() {
        for p in [Preset::Quick, Preset::Medium, Preset::Paper] {
            let l = p.lifetimes();
            assert!(l.windows(2).all(|w| w[0] > w[1]), "{:?}", p);
        }
    }
}
