//! Process-wide toggle for the fabric invariant oracle.
//!
//! The oracle itself lives in `ibsim-check` / `ibsim_net::audit`; this
//! module decides *whether* a run audits, so that every experiment
//! binary and library entry point agrees on one switch:
//!
//! * `--audit` on any experiment binary calls [`force`]`(true)`;
//! * the `IBSIM_AUDIT` environment variable (`1`/`true`/`on`) turns it
//!   on for processes that never parse flags — the CI audit leg sets it
//!   for the whole test suite;
//! * `IBSIM_AUDIT_EVERY` overrides the periodic cadence (events between
//!   passes, default 50 000).
//!
//! [`arm`] applies the decision to a freshly-built [`Network`]; the
//! experiment runners call it right after construction and
//! [`ibsim_check::AuditReport::raise`] at end of run, so a violation
//! fails the run with the structured ledger diff.

use ibsim_net::Network;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// 0 = follow the environment, 1 = forced off, 2 = forced on.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Override the environment (last call wins; `--audit` uses this).
pub fn force(on: bool) {
    FORCE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Should runs audit? Forced value if set, else `IBSIM_AUDIT`.
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| {
                matches!(
                    std::env::var("IBSIM_AUDIT").as_deref(),
                    Ok("1") | Ok("true") | Ok("on")
                )
            })
        }
    }
}

/// Events between periodic audit passes (`IBSIM_AUDIT_EVERY`).
pub fn interval() -> u64 {
    static ENV: OnceLock<u64> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("IBSIM_AUDIT_EVERY")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(50_000)
    })
}

/// Enable the oracle on `net` when auditing is on. Call before the
/// first event is dispatched.
pub fn arm(net: &mut Network) {
    if enabled() {
        net.enable_audit(interval());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibsim_net::NetConfig;
    use ibsim_topo::single_switch;

    #[test]
    fn force_wins_and_arms_networks() {
        // One test owns the global: toggling both ways checks force()
        // beats the environment in either direction.
        force(true);
        assert!(enabled());
        let topo = single_switch(4, 2);
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net);
        assert!(net.audit_enabled());

        force(false);
        assert!(!enabled());
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net);
        assert!(!net.audit_enabled());
    }

    #[test]
    fn interval_has_a_sane_default() {
        assert!(interval() > 0);
    }
}
