//! Divergence bisector CLI: find when and where a one-knob CC change
//! first alters simulator state.
//!
//! ```text
//! cargo run --release --bin bisect -- \
//!     --preset quick --perturb threshold=7 --resolution-us 50
//! ```
//!
//! Runs the preset's hotspot scenario twice per probe — once with the
//! paper's Table I CC parameters, once with one parameter perturbed —
//! and binary-searches checkpoint times for the first window in which
//! the two full state trees differ, reporting the diverging fields as
//! JSON-pointer paths.

use ibsim::bisect::{bisect_divergence, perturb_cc, DEFAULT_IGNORE};
use ibsim::prelude::*;
use ibsim_state::render_diff;
use std::collections::HashMap;

fn parse_args() -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            panic!("unexpected positional argument {a:?}");
        };
        if let Some((k, v)) = key.split_once('=') {
            flags.insert(k.to_string(), v.to_string());
        } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
            let v = it.next().unwrap();
            flags.insert(key.to_string(), v);
        } else {
            flags.insert(key.to_string(), "true".to_string());
        }
    }
    flags
}

fn main() {
    let args = parse_args();
    let preset = match args.get("preset").map(String::as_str) {
        None => Preset::Quick,
        Some(s) => {
            Preset::parse(s).unwrap_or_else(|| panic!("unknown preset {s:?}; try quick|medium|paper"))
        }
    };
    let seed: u64 = args
        .get("seed")
        .map(|v| v.parse().unwrap_or_else(|_| panic!("--seed wants a number, got {v:?}")))
        .unwrap_or(0x1B51_C0DE);
    let resolution_us: u64 = args
        .get("resolution-us")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--resolution-us wants a number, got {v:?}"))
        })
        .unwrap_or(50);
    assert!(resolution_us > 0, "--resolution-us must be positive");
    let perturb = args.get("perturb").map(String::as_str).unwrap_or("threshold=7");
    let (key, value) = perturb
        .split_once('=')
        .unwrap_or_else(|| panic!("--perturb wants KEY=VALUE, got {perturb:?}"));
    let value: u64 = value
        .parse()
        .unwrap_or_else(|_| panic!("--perturb {key}: wants a number, got {value:?}"));

    let topo = preset.topology();
    let cfg_a = preset.net_config().with_seed(seed);
    assert!(cfg_a.cc.is_some(), "preset must have CC enabled to perturb it");
    let mut cfg_b = cfg_a.clone();
    perturb_cc(cfg_b.cc.as_mut().unwrap(), key, value);
    if cfg_a.cc == cfg_b.cc {
        panic!("--perturb {key}={value} equals the baseline value; nothing to bisect");
    }

    let roles = RoleSpec {
        num_nodes: topo.num_hcas,
        num_hotspots: preset.num_hotspots(),
        b_pct: 0,
        b_p: 0,
        c_pct_of_rest: 80,
    };
    let horizon = Time::ZERO + preset.durations().total();
    eprintln!(
        "bisect: preset={} nodes={} perturb {key}={value} horizon={:.1} us resolution={} us",
        preset.name(),
        topo.num_hcas,
        horizon.as_us_f64(),
        resolution_us,
    );

    match bisect_divergence(
        &topo,
        &cfg_a,
        &cfg_b,
        roles,
        horizon,
        TimeDelta::from_us(resolution_us),
        DEFAULT_IGNORE,
    ) {
        None => {
            println!(
                "no divergence: state trees identical over [0, {:.1}] us (perturbation {key}={value} is inert here)",
                horizon.as_us_f64()
            );
        }
        Some(d) => {
            println!(
                "first divergence in ({:.1}, {:.1}] us ({} probes)",
                d.clean_at.as_us_f64(),
                d.diverged_at.as_us_f64(),
                d.probes
            );
            if let Some(f) = d.first_field() {
                println!("first diverging field: {f}");
            }
            let shown = d.diffs.len().min(20);
            println!("state diff at t={:.1} us ({} of {} fields):", d.diverged_at.as_us_f64(), shown, d.diffs.len());
            print!("{}", render_diff(&d.diffs[..shown]));
        }
    }
}
