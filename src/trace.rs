//! Process-wide toggle + sink for the causal flow tracer.
//!
//! The span recorder lives in `ibsim_net::trace` / `ibsim_net::span`;
//! this module decides *which flows* a run traces and *where* the
//! exports land, on the same contract as [`crate::telemetry`]:
//!
//! * `--trace-flows SRC:DST[,SRC:DST…]` on any experiment binary calls
//!   [`force`]`(Some(flows))`, and `--trace-out DIR` picks the export
//!   directory (default: the binary's `--out`);
//! * the `IBSIM_TRACE_FLOWS` environment variable (same grammar) turns
//!   tracing on for processes that never parse flags, with
//!   `IBSIM_TRACE_OUT` choosing the directory;
//! * [`arm`] applies the decision to a freshly-built [`Network`];
//!   [`finish`] writes `trace_{run}.json` (Chrome trace-event /
//!   Perfetto) and `trace_{run}.csv` (flat records) at end of run.
//!
//! Tracing is purely observational: a traced run's simulation outputs
//! are byte-identical to an untraced run's (pinned in
//! `tests/determinism.rs`).

use ibsim_net::{chrome_trace_json, records_csv, Network, NodeId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// What `--trace-flows` asked for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowSpec {
    /// Explicit `SRC:DST` pairs.
    Flows(Vec<(NodeId, NodeId)>),
    /// The `hotspots` keyword: trace every flow *into* the run's
    /// hotspots. Hotspot locations are drawn from the scenario RNG, so
    /// only the runner knows them — [`arm`] does nothing for this
    /// variant and the scenario runners call [`arm_hotspots`] once the
    /// role assignment exists.
    Hotspots,
}

/// `None` = follow the environment; `Some(None)` = forced off;
/// `Some(Some(spec))` = forced on for that spec.
#[allow(clippy::type_complexity)]
fn force_cell() -> &'static Mutex<Option<Option<FlowSpec>>> {
    static CELL: OnceLock<Mutex<Option<Option<FlowSpec>>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

/// Monotonic per-process run label counter (`run000`, `run001`, …),
/// advanced once per traced run so parallel sweeps never clobber each
/// other's exports. Counts in lockstep with the telemetry label when
/// both layers are on (each finishes once per run).
static RUN_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Override the environment (last call wins; `--trace-flows` uses
/// this). `Some(spec)` forces tracing of that spec, `None` forces
/// tracing off.
pub fn force(spec: Option<FlowSpec>) {
    *force_cell().lock().unwrap() = Some(spec);
}

/// Parse a `--trace-flows` value: either the `hotspots` keyword or a
/// `SRC:DST[,SRC:DST…]` flow list (e.g. `0:3` or `0:3,5:3`).
pub fn parse_flows(spec: &str) -> Result<FlowSpec, String> {
    if spec.trim() == "hotspots" {
        return Ok(FlowSpec::Hotspots);
    }
    spec.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (s, d) = part
                .split_once(':')
                .ok_or_else(|| format!("flow {part:?} wants SRC:DST (or the keyword hotspots)"))?;
            let s = s
                .trim()
                .parse()
                .map_err(|_| format!("bad source node {s:?} in flow {part:?}"))?;
            let d = d
                .trim()
                .parse()
                .map_err(|_| format!("bad dest node {d:?} in flow {part:?}"))?;
            Ok((s, d))
        })
        .collect::<Result<Vec<_>, String>>()
        .map(FlowSpec::Flows)
}

/// What should runs trace? Forced value if set, else
/// `IBSIM_TRACE_FLOWS`.
pub fn enabled() -> Option<FlowSpec> {
    if let Some(forced) = force_cell().lock().unwrap().clone() {
        return forced;
    }
    static ENV: OnceLock<Option<FlowSpec>> = OnceLock::new();
    ENV.get_or_init(|| {
        let spec = std::env::var("IBSIM_TRACE_FLOWS").ok()?;
        if spec.is_empty() {
            return None;
        }
        Some(parse_flows(&spec).unwrap_or_else(|e| panic!("IBSIM_TRACE_FLOWS: {e}")))
    })
    .clone()
}

fn out_dir_override() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Direct trace exports to `dir` (binaries pass `--trace-out`, falling
/// back to their `--out`).
pub fn set_out_dir(dir: impl Into<PathBuf>) {
    *out_dir_override().lock().unwrap() = Some(dir.into());
}

/// Where exports land: [`set_out_dir`] value, else `IBSIM_TRACE_OUT`,
/// else `results`.
pub fn out_dir() -> PathBuf {
    if let Some(d) = out_dir_override().lock().unwrap().clone() {
        return d;
    }
    std::env::var("IBSIM_TRACE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Enable the tracer on `net` when tracing is on with explicit flows.
/// Call before the first event is dispatched. The `hotspots` keyword
/// arms nothing here — the runner resolves it via [`arm_hotspots`].
pub fn arm(net: &mut Network) {
    if let Some(FlowSpec::Flows(flows)) = enabled() {
        net.enable_trace(flows);
    }
}

/// Resolve the `hotspots` keyword against a drawn role assignment:
/// trace every flow from any of the `num_nodes` end nodes into any
/// hotspot. Scenario runners call this right after role assignment;
/// a no-op unless the active spec is [`FlowSpec::Hotspots`].
pub fn arm_hotspots(net: &mut Network, hotspots: &[NodeId], num_nodes: usize) {
    if enabled() != Some(FlowSpec::Hotspots) {
        return;
    }
    for &h in hotspots {
        net.enable_trace((0..num_nodes as NodeId).filter(|&n| n != h).map(move |n| (n, h)));
    }
}

/// Write one finished run's exports — `trace_{run}.json` (Chrome
/// trace-event document for Perfetto / chrome://tracing) and
/// `trace_{run}.csv` (one row per record, capture order) — and return
/// their paths. No-op (`None`) when the network was not armed.
pub fn finish(net: &Network, hint: &str) -> Option<Vec<PathBuf>> {
    let tracer = net.tracer()?;
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create trace out dir");
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let label = if hint.is_empty() {
        format!("run{seq:03}")
    } else {
        format!("run{seq:03}_{hint}")
    };

    let json = dir.join(format!("trace_{label}.json"));
    let doc = chrome_trace_json(tracer.records());
    std::fs::write(
        &json,
        serde_json::to_string_pretty(&doc).expect("trace doc serialises"),
    )
    .expect("write trace json");

    let csv = dir.join(format!("trace_{label}.csv"));
    std::fs::write(&csv, records_csv(tracer.records())).expect("write trace csv");

    Some(vec![json, csv])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibsim_net::{DestPattern, NetConfig, TrafficClass};
    use ibsim_topo::single_switch;

    #[test]
    fn parse_flow_lists() {
        assert_eq!(parse_flows("0:3").unwrap(), FlowSpec::Flows(vec![(0, 3)]));
        assert_eq!(
            parse_flows("1:0, 2:0").unwrap(),
            FlowSpec::Flows(vec![(1, 0), (2, 0)])
        );
        assert_eq!(parse_flows("hotspots").unwrap(), FlowSpec::Hotspots);
        assert!(parse_flows("7").is_err());
        assert!(parse_flows("a:b").is_err());
    }

    #[test]
    fn force_wins_arms_networks_and_finish_writes_exports() {
        let dir = std::env::temp_dir().join(format!("ibsim_trace_{}", std::process::id()));
        set_out_dir(&dir);
        force(Some(FlowSpec::Flows(vec![(1, 0)])));
        assert_eq!(enabled(), Some(FlowSpec::Flows(vec![(1, 0)])));

        let topo = single_switch(8, 4);
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net);
        assert!(net.tracer().is_some());
        for n in 1..4 {
            net.set_classes(n, vec![TrafficClass::new(100, DestPattern::Fixed(0), 4096)]);
        }
        net.run_until(ibsim_engine::time::Time::from_us(200));

        let paths = finish(&net, "cc_on").expect("armed run writes exports");
        assert_eq!(paths.len(), 2);
        let json = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(json.contains("traceEvents"));
        let csv = std::fs::read_to_string(&paths[1]).unwrap();
        assert!(csv.starts_with("at_ps,src,dst,seq,cnp,point,vl,voq,credit,detail"));
        assert!(csv.lines().count() > 1, "traced flow produced records");

        force(None);
        assert_eq!(enabled(), None);
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net);
        assert!(net.tracer().is_none());
        assert!(finish(&net, "off").is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
