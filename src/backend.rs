//! Process-wide congestion-control backend selector.
//!
//! The backends themselves live in `ibsim-cc` (`SourceCc` and the
//! [`CcBackend`] tag); this module decides *which* backend a run uses,
//! so that every experiment binary and library entry point agrees on
//! one switch:
//!
//! * `--cc-backend {ibcc,dcqcn}` on any experiment binary calls
//!   [`force`];
//! * the `IBSIM_CC_BACKEND` environment variable selects it for
//!   processes that never parse flags — the CI dcqcn leg sets it for
//!   the whole test suite.
//!
//! [`apply`] rewrites a [`NetConfig`] before the network is built. It
//! only switches backends on CC-*on* configurations: a CC-off run
//! (`cfg.cc == None`) models the plain lossless fabric, which is the
//! common baseline both backends are compared against — and the DCQCN
//! backend requires the shared marking detector that only exists with
//! CC params installed.

use ibsim_cc::CcBackend;
use ibsim_net::NetConfig;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// 0 = follow the environment, 1 = forced ibcc, 2 = forced dcqcn.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Override the environment (last call wins; `--cc-backend` uses this).
pub fn force(b: CcBackend) {
    FORCE.store(
        match b {
            CcBackend::IbCc => 1,
            CcBackend::Dcqcn => 2,
        },
        Ordering::Relaxed,
    );
}

/// Drop a [`force`] override and follow `IBSIM_CC_BACKEND` again
/// (tests that own the global toggle mutex use this to restore state).
pub fn clear() {
    FORCE.store(0, Ordering::Relaxed);
}

/// The selected backend: forced value if set, else `IBSIM_CC_BACKEND`,
/// else the default IB CC.
pub fn backend() -> CcBackend {
    match FORCE.load(Ordering::Relaxed) {
        1 => CcBackend::IbCc,
        2 => CcBackend::Dcqcn,
        _ => {
            static ENV: OnceLock<CcBackend> = OnceLock::new();
            *ENV.get_or_init(|| {
                std::env::var("IBSIM_CC_BACKEND")
                    .ok()
                    .and_then(|s| CcBackend::parse(&s))
                    .unwrap_or_default()
            })
        }
    }
}

/// Rewrite `cfg` to run under the selected backend. CC-off configs are
/// left alone (see the module docs); everything else gets the backend
/// tag, with the DCQCN knobs keeping whatever the config already holds.
pub fn apply(cfg: &mut NetConfig) {
    if cfg.cc.is_some() {
        cfg.cc_backend = backend();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_rewrites_cc_on_configs_only() {
        // One test owns the global: force() must beat the environment
        // and leave CC-off configs untouched.
        force(CcBackend::Dcqcn);
        let mut on = NetConfig::paper();
        apply(&mut on);
        assert_eq!(on.cc_backend, CcBackend::Dcqcn);

        let mut off = NetConfig::paper_no_cc();
        apply(&mut off);
        assert_eq!(off.cc_backend, CcBackend::IbCc);

        force(CcBackend::IbCc);
        let mut on = NetConfig::paper();
        apply(&mut on);
        assert_eq!(on.cc_backend, CcBackend::IbCc);
        clear();
    }
}
