//! Process-wide toggle + sink for the engine self-profiler.
//!
//! The per-subsystem accounting lives in `ibsim_net::profile`; this
//! module decides whether runs profile and where the per-run JSON
//! breakdown lands, on the same contract as [`crate::telemetry`]:
//!
//! * `--profile` on any experiment binary calls [`force`]`(true)`;
//! * the `IBSIM_PROFILE` environment variable (`1`/`true`/`on`) turns
//!   it on for processes that never parse flags, with
//!   `IBSIM_PROFILE_OUT` choosing the directory;
//! * [`arm`] applies the decision to a freshly-built [`Network`];
//!   [`finish`] writes `profile_{run}.json` at end of run.
//!
//! Profiling is strictly observational — it reads the monotonic clock
//! around work that already happens — so a profile-on run's simulation
//! outputs are byte-identical to a profile-off run's (pinned in
//! `tests/determinism.rs`). The JSON itself is of course wall-clock
//! data and differs run to run.

use ibsim_net::Network;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// 0 = follow the environment, 1 = forced on, 2 = forced off.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Monotonic per-process run label counter (`run000`, `run001`, …).
static RUN_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Override the environment (last call wins; `--profile` uses this).
pub fn force(on: bool) {
    FORCE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Should runs profile? Forced value if set, else `IBSIM_PROFILE`.
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| {
                matches!(
                    std::env::var("IBSIM_PROFILE").as_deref(),
                    Ok("1") | Ok("true") | Ok("on")
                )
            })
        }
    }
}

fn out_dir_override() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Direct profile reports to `dir` (binaries pass their `--out`).
pub fn set_out_dir(dir: impl Into<PathBuf>) {
    *out_dir_override().lock().unwrap() = Some(dir.into());
}

/// Where reports land: [`set_out_dir`] value, else
/// `IBSIM_PROFILE_OUT`, else `results`.
pub fn out_dir() -> PathBuf {
    if let Some(d) = out_dir_override().lock().unwrap().clone() {
        return d;
    }
    std::env::var("IBSIM_PROFILE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Enable the profiler on `net` when profiling is on.
pub fn arm(net: &mut Network) {
    if enabled() {
        net.enable_profile();
    }
}

/// Write one finished run's `profile_{run}.json` breakdown and return
/// its path. No-op (`None`) when the network was not armed.
pub fn finish(net: &Network, hint: &str) -> Option<PathBuf> {
    let report = net.profile_report()?;
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create profile out dir");
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let label = if hint.is_empty() {
        format!("run{seq:03}")
    } else {
        format!("run{seq:03}_{hint}")
    };
    let path = dir.join(format!("profile_{label}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("profile report serialises"),
    )
    .expect("write profile json");
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibsim_net::{DestPattern, NetConfig, TrafficClass};
    use ibsim_topo::single_switch;

    #[test]
    fn force_wins_arms_networks_and_finish_writes_report() {
        let dir = std::env::temp_dir().join(format!("ibsim_prof_{}", std::process::id()));
        set_out_dir(&dir);
        force(true);
        assert!(enabled());

        let topo = single_switch(8, 4);
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net);
        assert!(net.profile_enabled());
        for n in 1..4 {
            net.set_classes(n, vec![TrafficClass::new(100, DestPattern::Fixed(0), 4096)]);
        }
        net.run_until(ibsim_engine::time::Time::from_us(200));

        let path = finish(&net, "cc_on").expect("armed run writes a report");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("queue_pop") && body.contains("ns_per_event"));

        force(false);
        assert!(!enabled());
        let mut net = Network::new(&topo, NetConfig::paper());
        arm(&mut net);
        assert!(!net.profile_enabled());
        assert!(finish(&net, "off").is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
