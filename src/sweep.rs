//! Embarrassingly-parallel execution of independent simulation cells.
//!
//! Each simulation is a deterministic single-threaded DES; a parameter
//! sweep (p values × CC on/off × lifetimes) is a set of independent
//! cells. This runner fans them out over a scoped thread pool and
//! returns results in input order, so parallel and serial execution
//! produce identical output.
//!
//! Work distribution is dynamic (an atomic cursor hands out the next
//! cell), but results never cross threads mid-run: each worker collects
//! its `(index, result)` pairs locally and the caller scatters them into
//! the output after joining — no per-cell locks.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on `threads` worker threads, preserving order.
/// `threads == 0` selects the available parallelism.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(items.len().max(1));

    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, std::thread::Result<R>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // Catch per cell so a panic (e.g. an invariant
                        // audit raising) is rethrown by the caller with
                        // the failing cell identified, instead of
                        // surfacing as an anonymous dead worker.
                        let r = catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                        let failed = r.is_err();
                        local.push((i, r));
                        if failed {
                            break; // stop claiming cells; rethrow on join
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker died outside a cell") {
                match r {
                    Ok(v) => {
                        debug_assert!(results[i].is_none(), "cell {i} computed twice");
                        results[i] = Some(v);
                    }
                    Err(payload) => {
                        eprintln!("sweep: cell {i} of {} panicked; rethrowing", items.len());
                        resume_unwind(payload);
                    }
                }
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("worker died before finishing"))
        .collect()
}

/// Progress-reporting variant: calls `progress(done, total)` after each
/// completed cell (from worker threads; keep it cheap and thread-safe).
pub fn parallel_map_progress<T, R, F, P>(items: &[T], threads: usize, f: F, progress: P) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    P: Fn(usize, usize) + Sync,
{
    let done = AtomicUsize::new(0);
    parallel_map(items, threads, |t| {
        let r = f(t);
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        progress(d, items.len());
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..57).collect();
        let out = parallel_map(&items, 4, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let items: Vec<u32> = (0..16).collect();
        let out = parallel_map(&items, 0, |&x| x + 1);
        assert_eq!(out[15], 16);
    }

    #[test]
    fn panicking_cell_rethrows_the_original_payload() {
        let items: Vec<u32> = (0..8).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 4, |&x| {
                if x == 5 {
                    panic!("ledger broke in this cell");
                }
                x
            })
        }));
        let payload = result.expect_err("the cell panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("ledger broke"), "payload lost: {msg:?}");
    }

    #[test]
    fn progress_reaches_total() {
        let max_seen = AtomicU64::new(0);
        let items: Vec<u32> = (0..20).collect();
        parallel_map_progress(
            &items,
            4,
            |&x| x,
            |done, total| {
                assert!(done <= total);
                max_seen.fetch_max(done as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(max_seen.load(Ordering::Relaxed), 20);
    }
}
