//! # ibsim — an InfiniBand congestion-control simulation suite
//!
//! A from-scratch Rust reproduction of the simulation infrastructure
//! and experiments of *"Exploring the Scope of the InfiniBand
//! Congestion Control Mechanism"* (Gran, Reinemo, Lysne, Skeie, Zahavi,
//! Shainer — IPDPS 2012).
//!
//! The stack, bottom to top:
//!
//! | crate | role |
//! |---|---|
//! | [`ibsim_engine`] | deterministic discrete-event kernel: time, event queue, rng, stats |
//! | [`ibsim_cc`] | the IB CC mechanism (spec 1.2.1 Annex A10) as pure state machines |
//! | [`ibsim_topo`] | fat trees (incl. the 648-node Sun DCS 648), meshes/tori, LFT routing |
//! | [`ibsim_net`] | lossless network model: credits, VoQ switches, HCAs, the FECN/BECN loop |
//! | [`ibsim_traffic`] | the paper's workloads: V/C/B roles, hotspot forests, moving hotspots |
//! | `ibsim` (this crate) | experiment runners, presets, parallel sweeps, reporting |
//!
//! ## Quickstart
//!
//! ```
//! use ibsim::prelude::*;
//!
//! // An 8-node fat tree with one hotspot: the smallest congestion tree.
//! let topo = FatTreeSpec::TEST_8.build();
//! let roles = RoleSpec {
//!     num_nodes: 8,
//!     num_hotspots: 1,
//!     b_pct: 0,
//!     b_p: 0,
//!     c_pct_of_rest: 80,
//! };
//! let pair = run_cc_pair(
//!     &topo,
//!     &NetConfig::paper(),
//!     roles,
//!     RunDurations::new_ms(1, 2),
//!     None,
//! );
//! // Enabling congestion control never hurts total throughput here.
//! assert!(pair.improvement() > 0.9);
//! ```

pub mod audit;
pub mod backend;
pub mod bisect;
pub mod checkpoint;
pub mod drill;
pub mod experiment;
pub mod figures;
pub mod preset;
pub mod profile;
pub mod replicas;
pub mod report;
pub mod shards;
pub mod sweep;
pub mod telemetry;
pub mod trace;
pub mod workload;

pub use bisect::{bisect_divergence, perturb_cc, Divergence};
pub use drill::{run_drill, run_drill_floor, DrillReport};
pub use figures::{FigureRow, FigureSeries};
pub use experiment::{
    run_cc_pair, run_cc_pair_faults, run_scenario, run_scenario_faults, run_scenario_opts,
    CcComparison, RunDurations, ScenarioResult,
};
pub use preset::Preset;
pub use replicas::{run_scenario_replicated, Estimate, ReplicatedResult};
pub use sweep::{parallel_map, parallel_map_progress};
pub use workload::{run_workload, WorkloadResult};

/// One-stop imports for examples and binaries.
pub mod prelude {
    pub use crate::drill::{run_drill, run_drill_floor, DrillReport};
    pub use crate::figures::{FigureRow, FigureSeries};
    pub use crate::experiment::{
        run_cc_pair, run_cc_pair_faults, run_scenario, run_scenario_faults, run_scenario_opts,
        CcComparison, RunDurations, ScenarioResult,
    };
    pub use crate::preset::Preset;
    pub use crate::replicas::{run_scenario_replicated, Estimate, ReplicatedResult};
    pub use crate::report::{ascii_plot, ascii_table, write_csv, write_json, PlotSeries};
    pub use crate::sweep::{parallel_map, parallel_map_progress};
    pub use crate::workload::{run_workload, WorkloadResult};
    pub use ibsim_cc::{CcMode, CcParams, Cct, CctShape};
    pub use ibsim_engine::time::{Bandwidth, Time, TimeDelta};
    pub use ibsim_net::{
        parse_spec, DestPattern, FaultSchedule, NetConfig, Network, TrafficClass, PAPER_MSG_BYTES,
    };
    pub use ibsim_topo::{single_switch, FatTree3Spec, FatTreeSpec, Topology, TorusSpec};
    pub use ibsim_traffic::{
        CollectiveAlgo, NodeRole, RoleAssignment, RoleSpec, Scenario, TraceGenSpec, TracePattern,
        TraceReader, TraceWriter, WorkloadKind, WorkloadSpec,
    };
}
